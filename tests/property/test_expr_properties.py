"""Property-based tests for the expression layer."""

from hypothesis import given, settings, strategies as st

from repro.rel.expr import (
    BinaryOp,
    ColRef,
    Expr,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    UnaryOp,
    compile_expr,
    factor_common_conjuncts,
    make_conjunction,
    make_disjunction,
    references,
    remap_refs,
    shift_refs,
    split_conjunction,
    split_disjunction,
)

ROW_WIDTH = 4

values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

rows = st.tuples(*([values] * ROW_WIDTH))


@st.composite
def comparison_exprs(draw) -> Expr:
    left = ColRef(draw(st.integers(0, ROW_WIDTH - 1)))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    right = Literal(draw(st.integers(-50, 50)))
    return BinaryOp(op, left, right)


@st.composite
def boolean_exprs(draw, depth=2) -> Expr:
    if depth == 0:
        return draw(comparison_exprs())
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(comparison_exprs())
    if choice == 1:
        return UnaryOp("NOT", draw(boolean_exprs(depth=depth - 1)))
    op = "AND" if choice == 2 else "OR"
    return BinaryOp(
        op,
        draw(boolean_exprs(depth=depth - 1)),
        draw(boolean_exprs(depth=depth - 1)),
    )


def reference_eval(expr: Expr, row):
    """Independent recursive evaluator to check compile_expr against."""
    if isinstance(expr, ColRef):
        return row[expr.index]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinaryOp):
        left = reference_eval(expr.left, row)
        right = reference_eval(expr.right, row)
        if expr.op == "AND":
            return left and right
        if expr.op == "OR":
            return left or right
        if left is None or right is None:
            return None
        import operator

        table = {
            "=": operator.eq, "<>": operator.ne, "<": operator.lt,
            "<=": operator.le, ">": operator.gt, ">=": operator.ge,
            "+": operator.add, "-": operator.sub, "*": operator.mul,
            "/": operator.truediv,
        }
        return table[expr.op](left, right)
    if isinstance(expr, UnaryOp):
        value = reference_eval(expr.operand, row)
        if value is None:
            return None
        return (not value) if expr.op == "NOT" else -value
    raise TypeError(type(expr))


class TestCompileMatchesReference:
    @given(expr=boolean_exprs(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_boolean_trees(self, expr, row):
        assert bool(compile_expr(expr)(row)) == bool(reference_eval(expr, row))

    @given(row=rows, shift=st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_shift_refs_semantics(self, row, shift):
        expr = BinaryOp("+", ColRef(0), ColRef(ROW_WIDTH - 1))
        padded = (None,) * shift + row
        assert compile_expr(shift_refs(expr, shift))(padded) == compile_expr(
            expr
        )(row)


class TestConjunctionRoundtrip:
    @given(st.lists(comparison_exprs(), min_size=1, max_size=6), rows)
    @settings(max_examples=200, deadline=None)
    def test_split_make_preserves_semantics(self, conjuncts, row):
        combined = make_conjunction(conjuncts)
        again = make_conjunction(split_conjunction(combined))
        original = all(bool(compile_expr(c)(row)) for c in conjuncts)
        assert bool(compile_expr(again)(row)) == original

    @given(st.lists(comparison_exprs(), min_size=1, max_size=6), rows)
    @settings(max_examples=200, deadline=None)
    def test_disjunction_roundtrip(self, disjuncts, row):
        combined = make_disjunction(disjuncts)
        original = any(bool(compile_expr(d)(row)) for d in disjuncts)
        assert bool(compile_expr(combined)(row)) == original
        assert len(split_disjunction(combined)) == len(disjuncts)


class TestFactoringPreservesSemantics:
    """Section 5.2's rewrite must never change a predicate's meaning."""

    @given(
        common=st.lists(comparison_exprs(), min_size=1, max_size=2),
        branches=st.lists(
            st.lists(comparison_exprs(), min_size=0, max_size=2),
            min_size=2,
            max_size=4,
        ),
        row=rows,
    )
    @settings(max_examples=300, deadline=None)
    def test_or_of_ands(self, common, branches, row):
        disjuncts = [
            make_conjunction(common + branch) for branch in branches
        ]
        expr = make_disjunction(disjuncts)
        factored = factor_common_conjuncts(expr)
        if factored is None:
            return
        assert bool(compile_expr(expr)(row)) == bool(
            compile_expr(factored)(row)
        ), (expr.digest(), factored.digest())


class TestReferences:
    @given(expr=boolean_exprs())
    @settings(max_examples=200, deadline=None)
    def test_references_are_within_row(self, expr):
        refs = references(expr)
        assert all(0 <= r < ROW_WIDTH for r in refs)

    @given(expr=boolean_exprs(), offset=st.integers(1, 7))
    @settings(max_examples=200, deadline=None)
    def test_remap_shifts_every_reference(self, expr, offset):
        remapped = remap_refs(expr, lambda i: i + offset)
        assert references(remapped) == {r + offset for r in references(expr)}
