"""Regression tests for WorkloadSimulator scheduling bugs.

Both bugs here shipped in the seed: the idle-cluster time jump advanced
``_now`` to the first *iterated* site's queue head instead of the global
minimum across all sites, and an empty task graph recorded its completion
without firing ``on_complete`` (wedging closed-loop clients).
"""

import pytest

from repro.cluster.scheduler import (
    CORE_UNITS_PER_SECOND,
    TaskGraph,
    WorkloadSimulator,
)


def one_task_graph(site: int, units: float) -> TaskGraph:
    graph = TaskGraph()
    graph.add(site, units)
    return graph


class TestIdleJump:
    def test_idle_jump_uses_global_minimum_release(self):
        # Site 0 holds a task released at t=5, site 1 a task released at
        # t=1.  An idle cluster must jump to t=1 (the global minimum),
        # not to t=5 just because site 0 is iterated first.
        simulator = WorkloadSimulator(sites=2, cores_per_site=1)
        units = 2_000.0
        duration = units / CORE_UNITS_PER_SECOND
        simulator.submit(one_task_graph(0, units), at=5.0, tag=0)
        simulator.submit(one_task_graph(1, units), at=1.0, tag=1)
        simulator.run()
        assert simulator.completion_time(1) == pytest.approx(1.0 + duration)
        assert simulator.completion_time(0) == pytest.approx(5.0 + duration)

    def test_idle_jump_never_rewinds_time(self):
        simulator = WorkloadSimulator(sites=2, cores_per_site=1)
        units = 1_000.0
        duration = units / CORE_UNITS_PER_SECOND
        simulator.submit(one_task_graph(0, units), at=2.0, tag=0)
        simulator.run()
        assert simulator.now == pytest.approx(2.0 + duration)
        # A later submission with an earlier release runs "now", not in
        # the past.
        simulator.submit(one_task_graph(1, units), at=0.5, tag=1)
        finish = simulator.run()
        assert finish >= simulator.completion_time(0)
        assert simulator.completion_time(1) >= simulator.completion_time(0)

    def test_staggered_releases_across_sites(self):
        # Three sites with releases 3.0 / 1.0 / 2.0: each task starts at
        # its own release (all sites have a free core).
        simulator = WorkloadSimulator(sites=3, cores_per_site=1)
        units = 400.0
        duration = units / CORE_UNITS_PER_SECOND
        for site, (release, tag) in enumerate([(3.0, 0), (1.0, 1), (2.0, 2)]):
            simulator.submit(one_task_graph(site, units), at=release, tag=tag)
        simulator.run()
        assert simulator.completion_time(1) == pytest.approx(1.0 + duration)
        assert simulator.completion_time(2) == pytest.approx(2.0 + duration)
        assert simulator.completion_time(0) == pytest.approx(3.0 + duration)


class TestEmptyGraphCompletion:
    def test_empty_graph_fires_on_complete(self):
        simulator = WorkloadSimulator(sites=1, cores_per_site=1)
        fired = []
        simulator.on_complete = lambda tag, at: fired.append((tag, at))
        simulator.submit(TaskGraph(), at=2.5, tag=7)
        assert fired == [(7, 2.5)]
        assert simulator.completion_time(7) == 2.5

    def test_empty_graph_callback_may_resubmit_same_tag(self):
        # Closed-loop clients resubmit under their own tag from the
        # callback; the open-tasks entry must already be cleared.
        simulator = WorkloadSimulator(sites=1, cores_per_site=1)
        submissions = []

        def resubmit(tag, at):
            submissions.append((tag, at))
            if len(submissions) < 3:
                simulator.submit(TaskGraph(), at=at + 1.0, tag=tag)

        simulator.on_complete = resubmit
        simulator.submit(TaskGraph(), at=0.0, tag=1)
        assert submissions == [(1, 0.0), (1, 1.0), (1, 2.0)]

    def test_empty_graph_without_callback_still_completes(self):
        simulator = WorkloadSimulator(sites=1, cores_per_site=1)
        simulator.submit(TaskGraph(), at=4.0, tag=2)
        assert simulator.completion_time(2) == 4.0
        assert simulator.latency(2) == 0.0
