"""Unit tests for schemas, catalog and statistics."""

import pytest

from repro.catalog.schema import Catalog, Column, TableSchema
from repro.catalog.statistics import compute_table_stats
from repro.catalog.types import ColumnType
from repro.common.errors import CatalogError

COLS = [
    Column("id", ColumnType.INTEGER),
    Column("name", ColumnType.VARCHAR),
    Column("amount", ColumnType.DOUBLE),
]


class TestTableSchema:
    def test_basic_properties(self):
        schema = TableSchema("t", COLS, ["id"])
        assert schema.width == 3
        assert schema.column_names == ["id", "name", "amount"]
        assert schema.column_index("NAME") == 1
        assert schema.column("amount").type is ColumnType.DOUBLE

    def test_affinity_defaults_to_first_pk_column(self):
        schema = TableSchema("t", COLS, ["id"])
        assert schema.affinity_key == "id"
        assert schema.affinity_index == 0

    def test_explicit_affinity_key(self):
        schema = TableSchema("t", COLS, ["id", "name"], affinity_key="name")
        assert schema.affinity_index == 1

    def test_replicated_table_has_no_affinity(self):
        schema = TableSchema("t", COLS, ["id"], replicated=True)
        assert schema.affinity_key is None
        assert schema.affinity_index is None

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", COLS + [Column("id", ColumnType.INTEGER)], ["id"])

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", COLS, ["missing"])

    def test_unknown_affinity_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", COLS, ["id"], affinity_key="missing")

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [], ["id"])

    def test_invalid_column_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("not a name", ColumnType.INTEGER)

    def test_unknown_column_lookup_raises(self):
        schema = TableSchema("t", COLS, ["id"])
        with pytest.raises(CatalogError):
            schema.column_index("ghost")


class TestIndexes:
    def test_add_index(self):
        schema = TableSchema("t", COLS, ["id"])
        index = schema.add_index("by_name", ["name"])
        assert index.columns == ("name",)
        assert "by_name" in schema.indexes

    def test_duplicate_index_rejected(self):
        schema = TableSchema("t", COLS, ["id"])
        schema.add_index("i", ["name"])
        with pytest.raises(CatalogError):
            schema.add_index("i", ["amount"])

    def test_index_on_unknown_column_rejected(self):
        schema = TableSchema("t", COLS, ["id"])
        with pytest.raises(CatalogError):
            schema.add_index("i", ["ghost"])


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        schema = TableSchema("t", COLS, ["id"])
        catalog.register(schema)
        assert catalog.table("T") is schema
        assert catalog.has_table("t")
        assert catalog.table_names() == ["t"]

    def test_duplicate_registration_rejected(self):
        catalog = Catalog()
        catalog.register(TableSchema("t", COLS, ["id"]))
        with pytest.raises(CatalogError):
            catalog.register(TableSchema("t", COLS, ["id"]))

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("ghost")


class TestStatistics:
    def test_row_count_and_distinct(self):
        rows = [(1, "a", 1.0), (2, "a", 2.0), (3, "b", 2.0)]
        stats = compute_table_stats(rows, ["id", "name", "amount"])
        assert stats.row_count == 3
        assert stats.distinct_count("id") == 3
        assert stats.distinct_count("name") == 2
        assert stats.distinct_count("amount") == 2

    def test_min_max(self):
        rows = [(5,), (1,), (9,)]
        stats = compute_table_stats(rows, ["v"])
        column = stats.column("v")
        assert column.min_value == 1
        assert column.max_value == 9

    def test_null_counting(self):
        rows = [(None,), (1,), (None,)]
        stats = compute_table_stats(rows, ["v"])
        column = stats.column("v")
        assert column.null_count == 2
        assert column.null_fraction(3) == pytest.approx(2 / 3)
        assert column.distinct_count == 1

    def test_empty_table(self):
        stats = compute_table_stats([], ["a", "b"])
        assert stats.row_count == 0
        assert stats.distinct_count("a") == 0

    def test_unknown_column_returns_none(self):
        stats = compute_table_stats([(1,)], ["a"])
        assert stats.column("zzz") is None
        assert stats.distinct_count("zzz") is None
