"""Tests for the row-vs-columnar microbenchmark and its artefact gate."""

import pytest

from repro.bench.colbench import (
    COLBENCH_SCHEMA,
    run_colbench,
    validate_colbench_artefact,
)

pytestmark = pytest.mark.columnar


@pytest.fixture(scope="module")
def report():
    # Tiny but real: both backends execute Q1 and Q6 end to end.
    return run_colbench(
        system="IC+", scale_factor=0.01, sites=4, repeats=1,
        query_ids=(1, 6),
    )


class TestRunColbench:
    def test_artefact_is_valid(self, report):
        assert report.validate() == []

    def test_backends_agreed(self, report):
        assert [q.query for q in report.queries] == ["Q1", "Q6"]
        assert not report.skipped
        for q in report.queries:
            assert q.results_match and q.makespans_match
            assert q.row_seconds > 0 and q.columnar_seconds > 0

    def test_geomean_and_text(self, report):
        assert report.geomean_speedup is not None
        text = report.to_text()
        assert "geomean speedup" in text
        assert "Q1" in text and "Q6" in text

    def test_dict_round_trip(self, report):
        obj = report.to_dict()
        assert obj["schema"] == COLBENCH_SCHEMA
        assert obj["scale_factor"] == 0.01
        assert len(obj["queries"]) == 2


class TestValidator:
    def _valid(self):
        return {
            "schema": COLBENCH_SCHEMA,
            "system": "IC+",
            "sites": 4,
            "scale_factor": 1.0,
            "repeats": 3,
            "geomean_speedup": 3.0,
            "queries": [
                {
                    "query": "Q1",
                    "rows": 4,
                    "row_seconds": 0.5,
                    "columnar_seconds": 0.05,
                    "speedup": 10.0,
                    "simulated_seconds": 0.2,
                    "results_match": True,
                    "makespans_match": True,
                }
            ],
            "skipped": {},
        }

    def test_accepts_valid(self):
        assert validate_colbench_artefact(self._valid()) == []

    def test_rejects_missing_top_key(self):
        obj = self._valid()
        del obj["geomean_speedup"]
        assert any("geomean_speedup" in p for p in validate_colbench_artefact(obj))

    def test_rejects_wrong_schema(self):
        obj = self._valid()
        obj["schema"] = "repro-colbench/v0"
        assert validate_colbench_artefact(obj)

    def test_rejects_result_mismatch(self):
        obj = self._valid()
        obj["queries"][0]["results_match"] = False
        assert any("differ" in p for p in validate_colbench_artefact(obj))

    def test_rejects_makespan_mismatch(self):
        obj = self._valid()
        obj["queries"][0]["makespans_match"] = False
        assert any("makespan" in p for p in validate_colbench_artefact(obj))

    def test_rejects_empty_queries(self):
        obj = self._valid()
        obj["queries"] = []
        assert any("non-empty" in p for p in validate_colbench_artefact(obj))

    def test_rejects_missing_row_key(self):
        obj = self._valid()
        del obj["queries"][0]["speedup"]
        assert any("speedup" in p for p in validate_colbench_artefact(obj))

    def test_rejects_non_dict(self):
        assert validate_colbench_artefact([]) != []
