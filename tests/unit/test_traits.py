"""Unit tests for distribution and collation traits (Table 1)."""

import pytest

from repro.rel.traits import (
    Collation,
    Distribution,
    DistributionType,
    EMPTY_COLLATION,
    satisfies,
)

SINGLE = Distribution.single()
BROADCAST = Distribution.broadcast()
HASH_A = Distribution.hash((0,))
HASH_B = Distribution.hash((1,))
ANY = Distribution.any()


class TestSatisfactionMatrix:
    """The paper's Table 1, row = source, column = target."""

    @pytest.mark.parametrize(
        "source,target,expected",
        [
            # Single row: satisfies only Single.
            (SINGLE, SINGLE, True),
            (SINGLE, BROADCAST, False),
            (SINGLE, HASH_A, False),
            # Broadcast row: satisfies everything.
            (BROADCAST, SINGLE, True),
            (BROADCAST, BROADCAST, True),
            (BROADCAST, HASH_A, True),
            # Hash row: never satisfies single; hash only on same keys.
            (HASH_A, SINGLE, False),
            (HASH_A, HASH_A, True),
            (HASH_A, HASH_B, False),
            (HASH_A, BROADCAST, False),
        ],
    )
    def test_matrix(self, source, target, expected):
        assert satisfies(source, target) is expected

    def test_any_target_is_always_satisfied(self):
        for source in (SINGLE, BROADCAST, HASH_A):
            assert satisfies(source, ANY)


class TestDistribution:
    def test_hash_requires_keys(self):
        with pytest.raises(ValueError):
            Distribution(DistributionType.HASH)

    def test_non_hash_rejects_keys(self):
        with pytest.raises(ValueError):
            Distribution(DistributionType.SINGLE, (0,))

    def test_predicates(self):
        assert SINGLE.is_single and not SINGLE.is_hash
        assert BROADCAST.is_broadcast
        assert HASH_A.is_hash

    def test_remap_preserves_keys(self):
        remapped = HASH_A.remap(lambda i: i + 3)
        assert remapped.keys == (3,)

    def test_remap_lost_key_returns_none(self):
        assert HASH_A.remap(lambda i: None) is None

    def test_remap_non_hash_is_identity(self):
        assert SINGLE.remap(lambda i: None) is SINGLE

    def test_equality_and_str(self):
        assert Distribution.hash((0,)) == Distribution.hash((0,))
        assert str(HASH_A) == "hash[0]"
        assert str(SINGLE) == "single"


class TestCollation:
    def test_empty_is_unsorted(self):
        assert not EMPTY_COLLATION.is_sorted

    def test_prefix_satisfaction(self):
        full = Collation(((0, True), (1, False)))
        prefix = Collation(((0, True),))
        assert full.satisfies(prefix)
        assert not prefix.satisfies(full)

    def test_direction_matters(self):
        asc = Collation(((0, True),))
        desc = Collation(((0, False),))
        assert not asc.satisfies(desc)

    def test_everything_satisfies_empty(self):
        assert EMPTY_COLLATION.satisfies(EMPTY_COLLATION)
        assert Collation(((2, True),)).satisfies(EMPTY_COLLATION)

    def test_str(self):
        assert str(Collation(((1, False),))) == "[$1 DESC]"
