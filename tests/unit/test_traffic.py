"""Unit tests for the serving-layer traffic generators."""

import random

import pytest

from repro.serve.traffic import (
    BurstyArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
    QueryTemplate,
    TenantSpec,
    TrafficError,
    TrafficGenerator,
    even_template_mix,
)

pytestmark = pytest.mark.serve

TEMPLATES = (
    QueryTemplate("a", "SELECT 1", weight=1.0),
    QueryTemplate("b", "SELECT 2", weight=3.0),
)


def _tenant(name="t0", arrivals=None, **kwargs):
    return TenantSpec(
        name=name,
        templates=TEMPLATES,
        arrivals=arrivals or PoissonArrivals(rate=2.0),
        **kwargs,
    )


class TestValidation:
    def test_template_weight_must_be_positive(self):
        with pytest.raises(TrafficError):
            QueryTemplate("bad", "SELECT 1", weight=0.0)

    def test_poisson_rate_must_be_positive(self):
        with pytest.raises(TrafficError):
            PoissonArrivals(rate=0.0)

    def test_bursty_rejects_bad_phases(self):
        with pytest.raises(TrafficError):
            BurstyArrivals(on_rate=0.0, mean_on_seconds=1, mean_off_seconds=1)
        with pytest.raises(TrafficError):
            BurstyArrivals(on_rate=1.0, mean_on_seconds=0, mean_off_seconds=1)

    def test_closed_loop_needs_clients(self):
        with pytest.raises(TrafficError):
            ClosedLoopArrivals(clients=0, mean_think_seconds=1.0)

    def test_empty_mix_rejected(self):
        with pytest.raises(TrafficError):
            TenantSpec("t", (), PoissonArrivals(rate=1.0))

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(TrafficError):
            TrafficGenerator([_tenant("x"), _tenant("x")])


class TestPoisson:
    def test_times_below_horizon_and_increasing(self):
        rng = random.Random(1)
        times = list(PoissonArrivals(rate=5.0).times(rng, 10.0))
        assert times
        assert all(0 < t < 10.0 for t in times)
        assert times == sorted(times)

    def test_rate_roughly_matches(self):
        rng = random.Random(2)
        times = list(PoissonArrivals(rate=10.0).times(rng, 200.0))
        assert 1500 < len(times) < 2500


class TestBursty:
    def test_silent_off_phases(self):
        spec = BurstyArrivals(
            on_rate=50.0, mean_on_seconds=1.0, mean_off_seconds=1.0
        )
        rng = random.Random(3)
        times = list(spec.times(rng, 50.0))
        assert times == sorted(times)
        # With off_rate=0 the long-run rate is well below the on-rate.
        assert 0 < len(times) < 50.0 * 50.0

    def test_off_rate_fills_gaps(self):
        quiet = BurstyArrivals(
            on_rate=20.0, mean_on_seconds=1.0, mean_off_seconds=4.0
        )
        noisy = BurstyArrivals(
            on_rate=20.0,
            mean_on_seconds=1.0,
            mean_off_seconds=4.0,
            off_rate=5.0,
        )
        n_quiet = len(list(quiet.times(random.Random(4), 100.0)))
        n_noisy = len(list(noisy.times(random.Random(4), 100.0)))
        assert n_noisy > n_quiet


class TestOpenLoopSchedule:
    def test_deterministic_per_seed(self):
        tenants = [_tenant("t0"), _tenant("t1")]
        a = TrafficGenerator(tenants, seed=7).open_loop_schedule(20.0)
        b = TrafficGenerator(tenants, seed=7).open_loop_schedule(20.0)
        assert [(r.tenant, r.arrival, r.sql) for r in a] == [
            (r.tenant, r.arrival, r.sql) for r in b
        ]

    def test_different_seed_differs(self):
        tenants = [_tenant("t0")]
        a = TrafficGenerator(tenants, seed=7).open_loop_schedule(20.0)
        b = TrafficGenerator(tenants, seed=8).open_loop_schedule(20.0)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_adding_tenant_keeps_existing_schedule(self):
        solo = TrafficGenerator([_tenant("t0")], seed=7).open_loop_schedule(
            20.0
        )
        both = TrafficGenerator(
            [_tenant("t0"), _tenant("t1")], seed=7
        ).open_loop_schedule(20.0)
        assert [r.arrival for r in solo] == [
            r.arrival for r in both if r.tenant == "t0"
        ]

    def test_sorted_and_carries_tenant_fields(self):
        reqs = TrafficGenerator(
            [_tenant("t0", priority=3, weight=2.0), _tenant("t1")], seed=1
        ).open_loop_schedule(10.0)
        assert [r.arrival for r in reqs] == sorted(r.arrival for r in reqs)
        t0 = [r for r in reqs if r.tenant == "t0"]
        assert all(r.priority == 3 and r.weight == 2.0 for r in t0)
        assert len({r.request_id for r in reqs}) == len(reqs)

    def test_weighted_mix_draw(self):
        reqs = TrafficGenerator(
            [_tenant("t0", arrivals=PoissonArrivals(rate=50.0))], seed=5
        ).open_loop_schedule(40.0)
        by_name = {"a": 0, "b": 0}
        for r in reqs:
            by_name[r.template] += 1
        # b has 3x the weight of a.
        assert by_name["b"] > by_name["a"]


class TestClosedLoop:
    def test_first_arrivals_one_per_client(self):
        tenant = _tenant(
            arrivals=ClosedLoopArrivals(clients=4, mean_think_seconds=2.0)
        )
        gen = TrafficGenerator([tenant], seed=3)
        firsts = gen.first_arrivals(tenant)
        assert len(firsts) == 4
        assert {r.client for r in firsts} == {0, 1, 2, 3}
        assert all(0 <= r.arrival < 2.0 for r in firsts)

    def test_next_think_after_completion(self):
        tenant = _tenant(
            arrivals=ClosedLoopArrivals(clients=1, mean_think_seconds=1.0)
        )
        gen = TrafficGenerator([tenant], seed=3)
        nxt = gen.next_think(tenant, client=0, completed_at=5.0)
        assert nxt.arrival > 5.0
        assert nxt.client == 0

    def test_open_loop_helpers_reject_closed_mismatch(self):
        open_tenant = _tenant("open")
        gen = TrafficGenerator([open_tenant], seed=0)
        with pytest.raises(TrafficError):
            gen.first_arrivals(open_tenant)
        with pytest.raises(TrafficError):
            gen.next_think(open_tenant, 0, 0.0)

    def test_closed_tenants_excluded_from_open_schedule(self):
        closed = _tenant(
            "c", arrivals=ClosedLoopArrivals(clients=2, mean_think_seconds=1)
        )
        reqs = TrafficGenerator([closed, _tenant("o")], seed=0)
        schedule = reqs.open_loop_schedule(10.0)
        assert all(r.tenant == "o" for r in schedule)


class TestEvenTemplateMix:
    def test_even_mix_and_limit(self):
        queries = {"Q3": "c", "Q1": "a", "Q2": "b"}
        mix = even_template_mix(queries)
        assert [t.name for t in mix] == ["Q1", "Q2", "Q3"]
        assert all(t.weight == 1.0 for t in mix)
        assert [t.name for t in even_template_mix(queries, limit=2)] == [
            "Q1",
            "Q2",
        ]
