"""Unit tests for the cost model (Sections 3.2, 4.2, 5.1.2)."""

import math

import pytest

from repro.common.config import SystemConfig
from repro.common.constants import AFS, HAC, RCC, RPTC
from repro.cost.model import Cost, CostModel, ZERO_COST, distribution_factor


class FakeNode:
    """Minimal physical-node stand-in for Algorithm 2 tests."""

    def __init__(self, inputs=(), is_exchange=False, sites=None):
        self.inputs = tuple(inputs)
        self.is_exchange = is_exchange
        if sites is not None:
            self.partition_site_count = sites


class TestCost:
    def test_equal_weighted_sum(self):
        cost = Cost(cpu=1.0, memory=2.0, io=3.0, network=4.0)
        assert cost.value == 10.0

    def test_addition(self):
        total = Cost(cpu=1.0) + Cost(memory=2.0)
        assert total.cpu == 1.0 and total.memory == 2.0

    def test_ordering(self):
        assert Cost(cpu=1.0) < Cost(cpu=2.0)

    def test_zero_cost(self):
        assert ZERO_COST.value == 0.0


class TestDistributionFactor:
    """Algorithm 2."""

    def test_scan_without_exchange_uses_partition_sites(self):
        assert distribution_factor(FakeNode(sites=4)) == 4.0

    def test_exchange_anywhere_forces_one(self):
        leaf = FakeNode(sites=4)
        exchange = FakeNode(inputs=[leaf], is_exchange=True)
        op = FakeNode(inputs=[exchange])
        assert distribution_factor(op) == 1.0

    def test_exchange_at_root_forces_one(self):
        assert distribution_factor(FakeNode(inputs=[FakeNode(sites=4)], is_exchange=True)) == 1.0

    def test_multiple_leaves_take_minimum(self):
        join = FakeNode(inputs=[FakeNode(sites=4), FakeNode(sites=1)])
        assert distribution_factor(join) == 1.0

    def test_replicated_leaf_is_one(self):
        assert distribution_factor(FakeNode(sites=1)) == 1.0

    def test_no_leaf_info_defaults_to_one(self):
        assert distribution_factor(FakeNode()) == 1.0


class TestUnitNormalisation:
    """Eq. 4 (legacy, bytes) vs Eq. 5 (normalised, rows)."""

    def test_legacy_sort_memory_scales_with_width(self):
        model = CostModel(SystemConfig.ic())
        narrow = model.sort(1000, width=2)
        wide = model.sort(1000, width=16)
        assert wide.memory == pytest.approx(narrow.memory * 8)
        assert narrow.memory == pytest.approx(1000 * 2 * AFS)

    def test_normalised_sort_memory_ignores_width(self):
        model = CostModel(SystemConfig.ic_plus())
        narrow = model.sort(1000, width=2)
        wide = model.sort(1000, width=16)
        assert narrow.memory == wide.memory == 1000

    def test_legacy_memory_dwarfs_cpu(self):
        """The Section 4.2 defect: byte units implicitly out-weigh CPU."""
        model = CostModel(SystemConfig.ic())
        cost = model.sort(1000, width=16)
        assert cost.memory > cost.cpu

    def test_sort_cpu_is_nlogn(self):
        model = CostModel(SystemConfig.ic_plus())
        cost = model.sort(1000, width=4)
        expected = 1000 * RPTC + 1000 * math.log2(1002) * RCC
        assert cost.cpu == pytest.approx(expected)


class TestDistributionFactorInCosts:
    def test_df_divides_work_when_enabled(self):
        model = CostModel(SystemConfig.ic_plus())
        assert model.scan(1000, 4, df=4).cpu == pytest.approx(250 * RPTC)

    def test_df_ignored_when_disabled(self):
        model = CostModel(SystemConfig.ic())
        assert model.scan(1000, 4, df=4).cpu == pytest.approx(1000 * RPTC)

    def test_eq6_sort_with_df(self):
        model = CostModel(SystemConfig.ic_plus())
        df = 4.0
        cost = model.sort(1000, 4, df=df)
        local = 1000 / df
        expected = local * RPTC + local * math.log2(local + 2) * RCC
        assert cost.cpu == pytest.approx(expected)


class TestHashJoinCost:
    """Eq. 7."""

    def test_cpu_component(self):
        model = CostModel(SystemConfig.ic_plus())
        cost = model.hash_join(1000, 400, right_width=4, df_right=4)
        processed = 1000 + 400 / 4
        assert cost.cpu == pytest.approx(processed * (RCC + RPTC + HAC))

    def test_memory_is_build_side_only(self):
        model = CostModel(SystemConfig.ic_plus())
        cost = model.hash_join(10_000, 400, right_width=4, df_right=4)
        assert cost.memory == pytest.approx(100)

    def test_df_applies_to_right_only(self):
        """Section 5.1.2: the reward is for a local, partitioned build."""
        model = CostModel(SystemConfig.ic_plus())
        with_df = model.hash_join(1000, 400, 4, df_right=4)
        without = model.hash_join(1000, 400, 4, df_right=1)
        assert with_df.cpu < without.cpu
        assert with_df.memory < without.memory


class TestExchangeCost:
    def test_penalty_applied_when_fixed(self):
        model = CostModel(SystemConfig.ic_plus())
        unicast = model.exchange(1000, 4, target_sites=1)
        broadcast = model.exchange(1000, 4, target_sites=4)
        assert broadcast.network == pytest.approx(unicast.network * 4)

    def test_penalty_missing_in_baseline(self):
        """The shadowed-constant bug: multi-target costs like unicast."""
        model = CostModel(SystemConfig.ic())
        unicast = model.exchange(1000, 4, target_sites=1)
        broadcast = model.exchange(1000, 4, target_sites=4)
        assert broadcast.network == unicast.network

    def test_legacy_network_charges_bytes(self):
        model = CostModel(SystemConfig.ic())
        assert model.exchange(100, 8, 1).network == pytest.approx(100 * 8 * AFS)


class TestMergeJoinCost:
    def test_merge_phase_has_no_hashing(self):
        """Eq. 9: per tuple the merge pays RCC + RPTC only, which is what
        makes pre-sorted merge joins beat hash joins."""
        model = CostModel(SystemConfig.ic_plus())
        merge = model.merge_join(1000, 1000)
        hash_cost = model.hash_join(1000, 1000, 4)
        assert merge.cpu < hash_cost.cpu

    def test_sorts_flip_the_comparison_for_large_inputs(self):
        model = CostModel(SystemConfig.ic_plus())
        rows = 1_000_000.0
        merge_total = (
            model.merge_join(rows, rows).cpu + 2 * model.sort(rows, 4).cpu
        )
        assert model.hash_join(rows, rows, 4).cpu < merge_total
