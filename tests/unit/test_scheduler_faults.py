"""Unit tests for the scheduler's fault handling (crashes, slowdowns)."""

import pytest

from repro.cluster.scheduler import (
    TaskGraph,
    WorkloadSimulator,
    simulate_makespan,
    simulate_makespan_with_faults,
)
from repro.common.constants import CORE_UNITS_PER_SECOND as RATE
from repro.common.errors import ExecutionError, SiteFailureError


def serial_graph(site: int, count: int, units: float) -> TaskGraph:
    graph = TaskGraph()
    prev = []
    for _ in range(count):
        prev = [graph.add(site, units, prev)]
    return graph


def fanout_graph(sites: int, units: float) -> TaskGraph:
    graph = TaskGraph()
    scans = [graph.add(s, units) for s in range(sites)]
    graph.add(0, units, scans)  # root at the coordinator
    return graph


class TestNoFaultEquivalence:
    def test_empty_event_list_matches_plain_simulation(self):
        graph = fanout_graph(4, 2 * RATE)
        plain = simulate_makespan(graph, 4, 2)
        faulted, redispatched = simulate_makespan_with_faults(graph, 4, 2)
        assert faulted == pytest.approx(plain)
        assert redispatched == 0

    def test_far_future_fault_does_not_stretch_the_run(self):
        graph = fanout_graph(4, RATE)
        plain = simulate_makespan(graph, 4, 1)
        faulted, _ = simulate_makespan_with_faults(
            graph, 4, 1, events=[(1e6, "crash", (3,))]
        )
        assert faulted == pytest.approx(plain)


class TestCrash:
    def test_midflight_crash_redispatches_and_completes(self):
        # Site 1 holds a serial chain; it dies halfway through.
        graph = serial_graph(1, 4, RATE)  # 4 x 1s tasks on site 1
        makespan, redispatched = simulate_makespan_with_faults(
            graph, 4, 1, events=[(1.5, "crash", (1,))]
        )
        assert redispatched >= 1
        # The in-flight task restarts from scratch on a survivor.
        assert makespan >= 4.0
        assert makespan == pytest.approx(4.5)

    def test_crash_without_redispatch_raises(self):
        graph = serial_graph(1, 4, RATE)
        with pytest.raises(SiteFailureError):
            simulate_makespan_with_faults(
                graph, 4, 1, events=[(1.5, "crash", (1,))], redispatch=False
            )

    def test_crash_of_idle_site_is_harmless_without_redispatch(self):
        graph = serial_graph(0, 2, RATE)
        makespan, redispatched = simulate_makespan_with_faults(
            graph, 4, 1, events=[(0.5, "crash", (3,))], redispatch=False
        )
        assert makespan == pytest.approx(2.0)
        assert redispatched == 0

    def test_dead_site_at_submit_routes_to_survivor(self):
        simulator = WorkloadSimulator(4, 1)
        simulator.schedule_crash(2, at=0.0)
        graph = serial_graph(2, 1, RATE)
        simulator.submit(graph, at=0.5, tag=0)
        simulator.run()
        assert simulator.completion_time(0) == pytest.approx(1.5)

    def test_all_sites_dead_raises(self):
        graph = serial_graph(0, 2, RATE)
        with pytest.raises(SiteFailureError):
            simulate_makespan_with_faults(
                graph,
                2,
                1,
                events=[(0.5, "crash", (0,)), (0.5, "crash", (1,))],
            )

    def test_fault_beats_finish_on_a_tie(self):
        # A task finishing exactly when its site dies is lost, not done.
        graph = serial_graph(1, 1, RATE)
        makespan, redispatched = simulate_makespan_with_faults(
            graph, 2, 1, events=[(1.0, "crash", (1,))]
        )
        assert redispatched == 1
        assert makespan == pytest.approx(2.0)

    def test_counters_track_fired_crashes(self):
        simulator = WorkloadSimulator(4, 1)
        simulator.schedule_crash(1, at=0.25)
        simulator.schedule_crash(1, at=0.5)  # duplicate: already down
        simulator.submit(serial_graph(0, 1, RATE), at=0.0, tag=0)
        simulator.run()
        assert simulator.crashes_fired == 1


class TestSlowdown:
    def test_slow_site_stretches_dispatched_tasks(self):
        graph = serial_graph(1, 2, RATE)
        makespan, _ = simulate_makespan_with_faults(
            graph, 4, 1, events=[(0.0, "slow", (1, 4.0))]
        )
        assert makespan == pytest.approx(8.0)

    def test_slowdown_applies_only_from_its_time(self):
        graph = serial_graph(1, 2, RATE)
        makespan, _ = simulate_makespan_with_faults(
            graph, 4, 1, events=[(1.0, "slow", (1, 4.0))]
        )
        # First task at full speed (1s), second stretched to 4s.
        assert makespan == pytest.approx(5.0)

    def test_invalid_factor_rejected(self):
        simulator = WorkloadSimulator(2, 1)
        with pytest.raises(ExecutionError):
            simulator.schedule_slowdown(0, 0.0, at=0.0)

    def test_unknown_site_rejected(self):
        simulator = WorkloadSimulator(2, 1)
        with pytest.raises(ExecutionError):
            simulator.schedule_crash(5, at=0.0)


class TestFaultsUnderLoad:
    def test_crash_never_loses_work(self):
        # Tasks spread over all sites; one site dies mid-run; every tag
        # still completes.
        simulator = WorkloadSimulator(3, 2)
        simulator.schedule_crash(2, at=0.8)
        for tag in range(5):
            simulator.submit(fanout_graph(3, RATE), at=0.2 * tag, tag=tag)
        simulator.run()
        for tag in range(5):
            assert simulator.latency(tag) > 0
