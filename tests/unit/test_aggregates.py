"""Unit tests for aggregate accumulators and phases."""

import pytest

from repro.common.errors import ExecutionError
from repro.exec.aggregates import AggAccumulator, AggregateEvaluator
from repro.rel.expr import ColRef
from repro.rel.logical import AggCall, AggFunc


def feed(func, values, distinct=False):
    acc = AggAccumulator(func, distinct)
    for value in values:
        acc.add(value)
    return acc


class TestAccumulators:
    def test_count(self):
        assert feed(AggFunc.COUNT, [1, 2, 3]).result() == 3

    def test_count_skips_nulls(self):
        assert feed(AggFunc.COUNT, [1, None, 3]).result() == 2

    def test_sum(self):
        assert feed(AggFunc.SUM, [1.5, 2.5]).result() == 4.0

    def test_sum_of_nothing_is_null(self):
        assert feed(AggFunc.SUM, []).result() is None
        assert feed(AggFunc.SUM, [None, None]).result() is None

    def test_avg(self):
        assert feed(AggFunc.AVG, [2, 4, 6]).result() == pytest.approx(4.0)

    def test_avg_of_nothing_is_null(self):
        assert feed(AggFunc.AVG, []).result() is None

    def test_min_max(self):
        assert feed(AggFunc.MIN, [3, 1, 2]).result() == 1
        assert feed(AggFunc.MAX, [3, 1, 2]).result() == 3

    def test_min_max_strings(self):
        assert feed(AggFunc.MIN, ["b", "a"]).result() == "a"

    def test_count_zero(self):
        assert feed(AggFunc.COUNT, []).result() == 0


class TestDistinct:
    def test_count_distinct(self):
        assert feed(AggFunc.COUNT, [1, 1, 2, 2, 3], distinct=True).result() == 3

    def test_sum_distinct(self):
        assert feed(AggFunc.SUM, [5, 5, 3], distinct=True).result() == 8

    def test_distinct_cannot_be_split(self):
        acc = feed(AggFunc.COUNT, [1, 2], distinct=True)
        with pytest.raises(ExecutionError):
            acc.partial()


class TestMapReduceSplit:
    """MAP partials merged in REDUCE must equal single-phase results."""

    @pytest.mark.parametrize(
        "func", [AggFunc.COUNT, AggFunc.SUM, AggFunc.AVG, AggFunc.MIN, AggFunc.MAX]
    )
    def test_split_equals_single(self, func):
        values = [3.0, 7.0, 1.0, 9.0, 4.0, 6.0]
        single = feed(func, values).result()
        partial_a = feed(func, values[:3]).partial()
        partial_b = feed(func, values[3:]).partial()
        reducer = AggAccumulator(func, False)
        reducer.merge(partial_a)
        reducer.merge(partial_b)
        assert reducer.result() == pytest.approx(single)

    def test_avg_partial_is_sum_count_pair(self):
        acc = feed(AggFunc.AVG, [2.0, 4.0])
        assert acc.partial() == (6.0, 2)

    def test_merge_of_empty_partition(self):
        reducer = AggAccumulator(AggFunc.MIN, False)
        reducer.merge(None)  # an empty partition's MIN partial
        reducer.merge(5)
        assert reducer.result() == 5

    def test_count_partials_add(self):
        reducer = AggAccumulator(AggFunc.COUNT, False)
        reducer.merge(3)
        reducer.merge(4)
        assert reducer.result() == 7


class TestEvaluator:
    def test_accumulate_rows(self):
        calls = [
            AggCall(AggFunc.SUM, ColRef(0)),
            AggCall(AggFunc.COUNT, None),
            AggCall(AggFunc.MAX, ColRef(1)),
        ]
        evaluator = AggregateEvaluator(calls)
        group = evaluator.new_group()
        for row in [(1.0, "a"), (2.0, "c"), (3.0, "b")]:
            evaluator.accumulate(group, row)
        assert evaluator.results(group) == (6.0, 3, "c")

    def test_merge_row_with_offset(self):
        calls = [AggCall(AggFunc.SUM, ColRef(0)), AggCall(AggFunc.COUNT, None)]
        evaluator = AggregateEvaluator(calls)
        group = evaluator.new_group()
        # Partial row layout: (group_key, sum_partial, count_partial).
        evaluator.merge_row(group, ("k", (10.0, 2), 2), offset=1)
        evaluator.merge_row(group, ("k", (5.0, 1), 1), offset=1)
        assert evaluator.results(group) == (15.0, 3)

    def test_call_requires_argument(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            AggCall(AggFunc.SUM, None)
