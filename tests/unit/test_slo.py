"""Unit tests for SLO aggregation and the artefact schema gate."""

import pytest

from repro.core.cluster import QueryStatus
from repro.serve.server import ServeRecord, ServeResult
from repro.serve.slo import (
    GLOBAL_TENANT,
    SLO_SCHEMA,
    SloReport,
    validate_slo_artefact,
)

pytestmark = pytest.mark.serve


def _ok(tenant, rid, arrival, latency, queue_wait=0.0, cache_hit=False):
    return ServeRecord(
        tenant=tenant,
        template="q",
        request_id=rid,
        status=QueryStatus.OK,
        arrival=arrival,
        dispatched=arrival,
        completed=arrival + latency,
        latency=latency,
        queue_wait=queue_wait,
        execution_seconds=latency - queue_wait,
        cache_hit=cache_hit,
    )


def _rejected(tenant, rid, arrival, reason="queue_full"):
    return ServeRecord(
        tenant=tenant,
        template="q",
        request_id=rid,
        status=QueryStatus.REJECTED,
        arrival=arrival,
        completed=arrival,
        reject_reason=reason,
    )


def _result(records, makespan=10.0):
    return ServeResult(
        system="IC+",
        sites=4,
        seed=0,
        policy="fifo",
        horizon=10.0,
        makespan=makespan,
        max_queue_depth=3,
        records=records,
    )


class TestSloReport:
    def test_per_tenant_and_global_rows(self):
        report = SloReport.from_result(
            _result(
                [
                    _ok("a", 1, 0.0, 1.0),
                    _ok("b", 2, 0.0, 3.0),
                    _rejected("b", 3, 1.0),
                ]
            )
        )
        assert [row.tenant for row in report.tenants] == [
            "a",
            "b",
            GLOBAL_TENANT,
        ]
        assert report.tenant("a").completed == 1
        assert report.tenant("b").rejected == 1
        assert report.overall.offered == 3
        assert report.overall.completed == 2

    def test_percentiles_and_means(self):
        records = [
            _ok("a", i, 0.0, float(i), queue_wait=0.5) for i in range(1, 5)
        ]
        report = SloReport.from_result(_result(records))
        row = report.tenant("a")
        assert row.p50_seconds == pytest.approx(2.5)
        assert row.p99_seconds == pytest.approx(3.97)
        assert row.mean_latency_seconds == pytest.approx(2.5)
        assert row.mean_queue_wait_seconds == pytest.approx(0.5)
        assert row.mean_execution_seconds == pytest.approx(2.0)

    def test_throughput_and_rates(self):
        records = [
            _ok("a", 1, 0.0, 1.0, cache_hit=True),
            _ok("a", 2, 0.0, 1.0),
            _rejected("a", 3, 0.0),
            _rejected("a", 4, 0.0, reason="shed"),
        ]
        report = SloReport.from_result(_result(records, makespan=4.0))
        row = report.tenant("a")
        assert row.throughput_qps == pytest.approx(0.5)
        assert row.rejection_rate == pytest.approx(0.5)
        assert row.rejected_queue_full == 1
        assert row.rejected_shed == 1
        assert row.cache_hit_rate == pytest.approx(0.5)

    def test_failed_and_degraded_counts(self):
        failed = ServeRecord(
            tenant="a",
            template="q",
            request_id=1,
            status=QueryStatus.FAILED_SITE,
            arrival=0.0,
            dispatched=0.0,
            completed=1.0,
        )
        degraded = _ok("a", 2, 0.0, 1.0)
        degraded.degraded = True
        retried = _ok("a", 3, 0.0, 1.0)
        retried.attempts = 2
        report = SloReport.from_result(_result([failed, degraded, retried]))
        row = report.tenant("a")
        assert row.failed == 1
        assert row.degraded == 1
        assert row.retried == 1

    def test_rejected_only_tenant_has_no_percentiles(self):
        report = SloReport.from_result(_result([_rejected("a", 1, 0.0)]))
        row = report.tenant("a")
        assert row.p50_seconds is None
        assert row.completed == 0

    def test_to_text_contains_all_tenants(self):
        text = SloReport.from_result(
            _result([_ok("a", 1, 0.0, 1.0), _ok("b", 2, 0.0, 2.0)])
        ).to_text()
        assert "tenant" in text
        for name in ("a", "b", GLOBAL_TENANT):
            assert any(
                line.startswith(name) for line in text.splitlines()
            ), name

    def test_unknown_tenant_lookup_raises(self):
        report = SloReport.from_result(_result([_ok("a", 1, 0.0, 1.0)]))
        with pytest.raises(KeyError):
            report.tenant("ghost")


class TestArtefactValidation:
    def _valid(self):
        return SloReport.from_result(
            _result([_ok("a", 1, 0.0, 1.0), _rejected("b", 2, 0.0)])
        ).to_dict()

    def test_valid_artefact_passes(self):
        assert validate_slo_artefact(self._valid()) == []

    def test_schema_tag_present(self):
        assert self._valid()["schema"] == SLO_SCHEMA

    def test_not_a_dict(self):
        assert validate_slo_artefact([]) != []

    def test_missing_top_level_key(self):
        art = self._valid()
        del art["makespan_seconds"]
        assert any("makespan_seconds" in p for p in validate_slo_artefact(art))

    def test_wrong_schema_tag(self):
        art = self._valid()
        art["schema"] = "repro-serve/v0"
        assert any("schema" in p for p in validate_slo_artefact(art))

    def test_missing_global_row(self):
        art = self._valid()
        art["tenants"] = [
            row for row in art["tenants"] if row["tenant"] != GLOBAL_TENANT
        ]
        assert any("global" in p for p in validate_slo_artefact(art))

    def test_count_consistency_enforced(self):
        art = self._valid()
        art["tenants"][0]["completed"] = 999
        assert any("exceeds offered" in p for p in validate_slo_artefact(art))

    def test_rate_bounds_enforced(self):
        art = self._valid()
        art["tenants"][0]["cache_hit_rate"] = 1.5
        assert any("cache_hit_rate" in p for p in validate_slo_artefact(art))

    def test_percentile_monotonicity_enforced(self):
        art = self._valid()
        row = next(r for r in art["tenants"] if r["tenant"] == "a")
        row["p50_seconds"], row["p99_seconds"] = (
            row["p99_seconds"] + 1.0,
            row["p50_seconds"],
        )
        assert any("monotone" in p for p in validate_slo_artefact(art))

    def test_partial_percentiles_flagged(self):
        art = self._valid()
        row = next(r for r in art["tenants"] if r["tenant"] == "a")
        row["p95_seconds"] = None
        assert any("partial" in p for p in validate_slo_artefact(art))

    def test_completed_without_percentiles_flagged(self):
        art = self._valid()
        row = next(r for r in art["tenants"] if r["tenant"] == "a")
        row["p50_seconds"] = row["p95_seconds"] = row["p99_seconds"] = None
        assert any("no percentiles" in p for p in validate_slo_artefact(art))
