"""Unit tests for the adaptive benchmark driver (repro.bench.adaptive)."""

import pytest

from repro.bench.adaptive import default_workload, run_adaptive
from repro.common.config import SystemConfig

from helpers import make_company_cluster

pytestmark = pytest.mark.adaptive

WORKLOAD = {
    "count": "select dept_id, count(*) from emp group by dept_id",
    "join": "select e.name, s.amount from emp e, sales s "
            "where e.emp_id = s.emp_id and s.amount > 1000",
}


def company_loader(config, scale_factor):
    return make_company_cluster(config)


class TestRunAdaptive:
    def test_repeats_hit_the_cache(self):
        config = SystemConfig.ic_plus(
            4, plan_cache=True, cardinality_feedback=True
        )
        result = run_adaptive(company_loader, WORKLOAD, config, 1.0, repeats=3)
        assert result.rows_stable
        for measurement in result.measurements.values():
            assert measurement.first_ticks > 0
            # repeats are hits (or one replan): never more ticks than cold
            assert measurement.repeat_ticks <= measurement.first_ticks
            assert sum(measurement.cache_hits) >= 1
        assert result.total_repeat_ticks < result.total_first_ticks * 2

    def test_disabled_config_is_a_flat_baseline(self):
        config = SystemConfig.ic_plus(4)
        result = run_adaptive(company_loader, WORKLOAD, config, 1.0, repeats=2)
        assert result.rows_stable
        for measurement in result.measurements.values():
            assert sum(measurement.cache_hits) == 0
            assert measurement.budget_ticks[0] == measurement.budget_ticks[1]

    def test_to_text_renders_every_query(self):
        config = SystemConfig.ic_plus(4, plan_cache=True)
        result = run_adaptive(company_loader, WORKLOAD, config, 1.0, repeats=2)
        text = result.to_text()
        for name in WORKLOAD:
            assert name in text
        assert "rows stable across repeats: yes" in text

    def test_rejects_single_repeat(self):
        with pytest.raises(ValueError):
            run_adaptive(company_loader, WORKLOAD, SystemConfig.ic_plus(4), 1.0, 1)


def test_default_workload_is_a_sorted_slice():
    pool = {"b": "2", "a": "1", "c": "3"}
    assert list(default_workload(pool, 2)) == ["a", "b"]
