"""Unit tests for row expressions: evaluation, nulls and analysis."""

import pytest

from repro.common.errors import ValidationError
from repro.rel import expr as rex
from repro.rel.expr import (
    BinaryOp,
    CaseExpr,
    ColRef,
    FuncCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    UnaryOp,
    compile_expr,
    extract_equi_keys,
    factor_common_conjuncts,
    make_conjunction,
    make_disjunction,
    references,
    remap_refs,
    shift_refs,
    split_conjunction,
    split_disjunction,
)


def run(expr, row=()):
    return compile_expr(expr)(row)


class TestEvaluation:
    def test_colref(self):
        assert run(ColRef(1), (10, 20)) == 20

    def test_literal(self):
        assert run(Literal("x")) == "x"

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 3, 3, True), ("<>", 3, 4, True), ("<", 1, 2, True),
            ("<=", 2, 2, True), (">", 5, 2, True), (">=", 2, 3, False),
            ("+", 2, 3, 5), ("-", 7, 3, 4), ("*", 4, 5, 20), ("/", 9, 3, 3.0),
        ],
    )
    def test_binary_ops(self, op, left, right, expected):
        assert run(BinaryOp(op, Literal(left), Literal(right))) == expected

    def test_string_comparison_is_lexicographic(self):
        assert run(BinaryOp("<", Literal("1994-01-01"), Literal("1995-01-01")))

    def test_and_short_circuits(self):
        expr = BinaryOp("AND", Literal(False), BinaryOp("/", Literal(1), Literal(0)))
        assert run(expr) is False

    def test_or_short_circuits(self):
        expr = BinaryOp("OR", Literal(True), BinaryOp("/", Literal(1), Literal(0)))
        assert run(expr) is True

    def test_not(self):
        assert run(UnaryOp("NOT", Literal(False))) is True

    def test_negation(self):
        assert run(UnaryOp("-", Literal(5))) == -5

    def test_unknown_binary_op_rejected(self):
        with pytest.raises(ValidationError):
            BinaryOp("%", Literal(1), Literal(2))

    def test_unknown_unary_op_rejected(self):
        with pytest.raises(ValidationError):
            UnaryOp("!", Literal(1))


class TestNullSemantics:
    def test_arithmetic_with_null_is_null(self):
        assert run(BinaryOp("+", Literal(None), Literal(1))) is None

    def test_comparison_with_null_is_null(self):
        assert run(BinaryOp("=", Literal(None), Literal(1))) is None

    def test_division_with_null_is_null(self):
        assert run(BinaryOp("/", Literal(None), Literal(7.0))) is None

    def test_not_null_is_null(self):
        assert run(UnaryOp("NOT", Literal(None))) is None

    def test_is_null(self):
        assert run(IsNull(Literal(None))) is True
        assert run(IsNull(Literal(3))) is False

    def test_is_not_null(self):
        assert run(IsNull(Literal(None), negated=True)) is False

    def test_like_on_null_is_null(self):
        assert run(LikeExpr(Literal(None), "x%")) is None

    def test_function_on_null_is_null(self):
        assert run(FuncCall("UPPER", [Literal(None)])) is None

    def test_coalesce_skips_nulls(self):
        assert run(FuncCall("COALESCE", [Literal(None), Literal(4)])) == 4


class TestFunctionsAndCase:
    def test_extract_year(self):
        assert run(FuncCall("EXTRACT_YEAR", [Literal("1995-03-15")])) == 1995

    def test_extract_month(self):
        assert run(FuncCall("EXTRACT_MONTH", [Literal("1995-03-15")])) == 3

    def test_substring(self):
        expr = FuncCall("SUBSTRING", [Literal("13-555"), Literal(1), Literal(2)])
        assert run(expr) == "13"

    def test_substring_without_length(self):
        assert run(FuncCall("SUBSTRING", [Literal("hello"), Literal(3)])) == "llo"

    def test_unknown_function_rejected(self):
        with pytest.raises(ValidationError):
            FuncCall("NOPE", [Literal(1)])

    def test_case_picks_first_match(self):
        expr = CaseExpr(
            [(Literal(False), Literal("a")), (Literal(True), Literal("b"))],
            Literal("c"),
        )
        assert run(expr) == "b"

    def test_case_default(self):
        expr = CaseExpr([(Literal(False), Literal("a"))], Literal("dflt"))
        assert run(expr) == "dflt"

    def test_in_list(self):
        assert run(InList(Literal(2), [1, 2, 3])) is True
        assert run(InList(Literal(9), [1, 2, 3])) is False

    def test_not_in_list(self):
        assert run(InList(Literal(9), [1, 2], negated=True)) is True


class TestLikePatterns:
    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("PROMO%", "PROMO BRUSHED TIN", True),
            ("PROMO%", "LARGE TIN", False),
            ("%green%", "dark green smoke", True),
            ("%green%", "blue", False),
            ("%BRASS", "SMALL PLATED BRASS", True),
            ("%BRASS", "BRASS PLATED TIN", False),
            ("%special%requests%", "x special y requests z", True),
            ("%special%requests%", "requests then special", False),
            ("abc", "abc", True),
            ("abc", "abd", False),
            ("a_c", "abc", True),
            ("a_c", "abbc", False),
        ],
    )
    def test_pattern(self, pattern, value, expected):
        assert run(LikeExpr(Literal(value), pattern)) is expected

    def test_overlapping_middles_do_not_double_count(self):
        # Middles must match in order without reusing characters:
        # '%ab%ba%' needs "ab" strictly before a separate "ba".
        assert run(LikeExpr(Literal("aba"), "%ab%ba%")) is False
        assert run(LikeExpr(Literal("abba"), "%ab%ba%")) is True
        assert run(LikeExpr(Literal("aba"), "%a%ba%")) is True


class TestAnalysis:
    def test_references(self):
        expr = BinaryOp("+", ColRef(0), BinaryOp("*", ColRef(3), Literal(2)))
        assert references(expr) == {0, 3}

    def test_split_and_make_conjunction_roundtrip(self):
        conj = make_conjunction([Literal(1), Literal(2), Literal(3)])
        assert [c.value for c in split_conjunction(conj)] == [1, 2, 3]

    def test_make_conjunction_skips_none_and_true(self):
        assert make_conjunction([None, Literal(True)]) is None
        only = make_conjunction([None, Literal(5)])
        assert isinstance(only, Literal)

    def test_split_disjunction(self):
        disj = make_disjunction([Literal(1), Literal(2)])
        assert len(split_disjunction(disj)) == 2

    def test_shift_refs(self):
        shifted = shift_refs(BinaryOp("=", ColRef(1), ColRef(4)), 10)
        assert references(shifted) == {11, 14}

    def test_remap_refs(self):
        remapped = remap_refs(ColRef(2), lambda i: i * 10)
        assert remapped.index == 20

    def test_digest_equality(self):
        a = BinaryOp("=", ColRef(0), Literal(5))
        b = BinaryOp("=", ColRef(0), Literal(5))
        assert a == b
        assert hash(a) == hash(b)

    def test_is_literal_condition_sides(self):
        left_only = BinaryOp("=", ColRef(0), Literal(1))
        right_only = BinaryOp("=", ColRef(5), Literal(1))
        cross = BinaryOp("=", ColRef(0), ColRef(5))
        assert rex.is_literal_condition(left_only, 3) == "left"
        assert rex.is_literal_condition(right_only, 3) == "right"
        assert rex.is_literal_condition(cross, 3) == "both"
        assert rex.is_literal_condition(Literal(True), 3) == "none"


class TestEquiKeyExtraction:
    def test_simple_equi_pair(self):
        condition = BinaryOp("=", ColRef(1), ColRef(5))
        pairs, rest = extract_equi_keys(condition, left_width=3)
        assert pairs == [(1, 2)]
        assert rest == []

    def test_reversed_sides_normalise(self):
        condition = BinaryOp("=", ColRef(5), ColRef(1))
        pairs, _ = extract_equi_keys(condition, left_width=3)
        assert pairs == [(1, 2)]

    def test_same_side_equality_is_residual(self):
        condition = BinaryOp("=", ColRef(0), ColRef(1))
        pairs, rest = extract_equi_keys(condition, left_width=3)
        assert pairs == []
        assert len(rest) == 1

    def test_mixed_condition(self):
        condition = make_conjunction(
            [
                BinaryOp("=", ColRef(0), ColRef(4)),
                BinaryOp("<", ColRef(1), Literal(10)),
            ]
        )
        pairs, rest = extract_equi_keys(condition, left_width=3)
        assert pairs == [(0, 1)]
        assert len(rest) == 1

    def test_none_condition(self):
        pairs, rest = extract_equi_keys(None, left_width=3)
        assert pairs == [] and rest == []


class TestConditionFactoring:
    """Section 5.2's common-conjunct extraction."""

    def _branch(self, *conjuncts):
        return make_conjunction(list(conjuncts))

    def test_common_conjunct_is_factored(self):
        c1 = BinaryOp("=", ColRef(0), ColRef(5))
        branches = [
            self._branch(c1, BinaryOp("=", ColRef(1), Literal(i)))
            for i in range(3)
        ]
        expr = make_disjunction(branches)
        factored = factor_common_conjuncts(expr)
        assert factored is not None
        conjuncts = split_conjunction(factored)
        assert conjuncts[0] == c1
        # Remaining OR keeps three branches.
        assert len(split_disjunction(conjuncts[1])) == 3

    def test_no_common_conjunct_returns_none(self):
        expr = make_disjunction(
            [
                BinaryOp("=", ColRef(0), Literal(1)),
                BinaryOp("=", ColRef(1), Literal(2)),
            ]
        )
        assert factor_common_conjuncts(expr) is None

    def test_single_disjunct_returns_none(self):
        assert factor_common_conjuncts(BinaryOp("=", ColRef(0), Literal(1))) is None

    def test_factoring_preserves_semantics(self):
        c1 = BinaryOp("=", ColRef(0), Literal(1))
        expr = make_disjunction(
            [
                self._branch(c1, BinaryOp(">", ColRef(1), Literal(5))),
                self._branch(c1, BinaryOp("<", ColRef(1), Literal(2))),
            ]
        )
        factored = factor_common_conjuncts(expr)
        original = compile_expr(expr)
        rewritten = compile_expr(factored)
        for row in [(1, 6), (1, 1), (1, 3), (0, 6), (0, 1)]:
            assert bool(original(row)) == bool(rewritten(row)), row

    def test_all_conjuncts_common_drops_or_entirely(self):
        c1 = BinaryOp("=", ColRef(0), Literal(1))
        expr = make_disjunction([c1, c1])
        factored = factor_common_conjuncts(expr)
        assert factored == c1
