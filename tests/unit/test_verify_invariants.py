"""Unit tests for the physical-plan invariant validator."""

import pytest

from helpers import make_company_store
from repro.common.config import SystemConfig
from repro.common.errors import PlanInvariantError
from repro.exec.fragments import PhysReceiver, SenderSpec, fragment_plan
from repro.exec.physical import DEGRADED_HASH_KEY, PhysExchange
from repro.planner.volcano import QueryPlanner
from repro.rel.sql2rel import SqlToRelConverter
from repro.rel.traits import Distribution
from repro.sql.parser import parse
from repro.verify.invariants import PlanValidator, validate_query_plan

JOIN_SQL = (
    "select e.name, s.amount from emp e, sales s "
    "where e.emp_id = s.emp_id and s.amount > 100"
)
AGG_SQL = (
    "select region, count(*), sum(amount) from sales "
    "group by region order by region"
)


@pytest.fixture
def store():
    return make_company_store(sites=4)


def plan_for(store, sql, config=None):
    config = config or SystemConfig.ic_plus(4)
    logical = SqlToRelConverter(store.catalog).convert(parse(sql))
    return QueryPlanner(store, config).plan(logical)


def rules(violations):
    return {v.rule for v in violations}


class TestCleanPlans:
    @pytest.mark.parametrize("sql", [JOIN_SQL, AGG_SQL])
    @pytest.mark.parametrize("system", ["IC", "IC+", "IC+M"])
    def test_planner_output_is_violation_free(self, store, sql, system):
        from repro.common.config import PRESETS

        plan = plan_for(store, sql, PRESETS[system](4))
        assert validate_query_plan(plan) == []

    def test_check_passes_silently_on_clean_plan(self, store):
        PlanValidator().check(plan_for(store, JOIN_SQL))

    def test_degraded_hash_key_is_whitelisted(self, store):
        # The planner's degraded-hash marker is a synthetic key far beyond
        # any real column index; the width check must not flag it.
        plan = plan_for(store, JOIN_SQL)
        node = next(iter(plan.inputs), plan)
        node.distribution = Distribution.hash((DEGRADED_HASH_KEY,))
        assert "distribution-keys-in-range" not in rules(
            PlanValidator().validate_plan(plan)
        )


class TestNodeInvariants:
    def test_nan_rows_estimate_is_flagged(self, store):
        plan = plan_for(store, JOIN_SQL)
        plan.rows_est = float("nan")
        assert "rows-est-sane" in rules(PlanValidator().validate_plan(plan))

    def test_negative_rows_estimate_is_flagged(self, store):
        plan = plan_for(store, JOIN_SQL)
        plan.rows_est = -3.0
        assert "rows-est-sane" in rules(PlanValidator().validate_plan(plan))

    def test_out_of_range_hash_key_is_flagged(self, store):
        plan = plan_for(store, JOIN_SQL)
        plan.distribution = Distribution.hash((plan.width + 5,))
        assert "distribution-keys-in-range" in rules(
            PlanValidator().validate_plan(plan)
        )

    def test_non_single_root_distribution_is_flagged(self, store):
        plan = plan_for(store, JOIN_SQL)
        plan.distribution = Distribution.hash((0,))
        assert "root-distribution" in rules(
            PlanValidator().validate_plan(plan)
        )

    def test_schema_preserving_operator_with_extra_field(self, store):
        plan = plan_for(store, AGG_SQL)
        exchanges = [
            node
            for node in _walk(plan)
            if isinstance(node, PhysExchange)
        ]
        assert exchanges, "expected a distributed aggregate plan"
        exchanges[0].fields = list(exchanges[0].fields) + ["phantom"]
        assert "schema-preserved" in rules(
            PlanValidator().validate_plan(plan)
        )

    def test_check_raises_with_violations_attached(self, store):
        plan = plan_for(store, JOIN_SQL)
        plan.rows_est = float("inf")
        with pytest.raises(PlanInvariantError) as excinfo:
            PlanValidator().check(plan)
        assert any(v.rule == "rows-est-sane" for v in excinfo.value.violations)


class TestFragmentInvariants:
    def test_clean_fragments(self, store):
        plan = plan_for(store, JOIN_SQL)
        assert PlanValidator().validate_fragments(fragment_plan(plan)) == []

    def test_missing_root_fragment(self, store):
        fragments = fragment_plan(plan_for(store, JOIN_SQL))
        non_root = [f for f in fragments if not f.is_root]
        assert non_root
        found = rules(PlanValidator().validate_fragments(non_root))
        assert "single-root-fragment" in found

    def test_dangling_receiver_and_unconsumed_sender(self, store):
        fragments = fragment_plan(plan_for(store, JOIN_SQL))
        receiver = next(
            node
            for fragment in fragments
            for node in fragment.operators()
            if isinstance(node, PhysReceiver)
        )
        receiver.exchange_id = 999_001
        found = rules(PlanValidator().validate_fragments(fragments))
        assert "receiver-has-sender" in found
        assert "sender-has-receiver" in found

    def test_sender_targeting_any_distribution(self, store):
        fragments = fragment_plan(plan_for(store, JOIN_SQL))
        child = next(f for f in fragments if not f.is_root)
        child.sender = SenderSpec(
            child.sender.exchange_id,
            Distribution.any(),
            child.sender.merge_collation,
        )
        found = rules(PlanValidator().validate_fragments(fragments))
        assert "sender-target-concrete" in found

    def test_receiver_distribution_must_match_sender(self, store):
        fragments = fragment_plan(plan_for(store, JOIN_SQL))
        child = next(f for f in fragments if not f.is_root)
        child.sender = SenderSpec(
            child.sender.exchange_id,
            Distribution.broadcast()
            if not child.sender.target.is_broadcast
            else Distribution.single(),
            child.sender.merge_collation,
        )
        found = rules(PlanValidator().validate_fragments(fragments))
        assert "receiver-distribution-matches-sender" in found

    def test_child_ids_must_mirror_receivers(self, store):
        fragments = fragment_plan(plan_for(store, JOIN_SQL))
        consumer = next(f for f in fragments if f.child_ids)
        consumer.child_ids = list(consumer.child_ids) + [42]
        found = rules(PlanValidator().validate_fragments(fragments))
        assert "child-ids-match-receivers" in found


class TestExecutionResultInvariant:
    """The root fragment's ``rows_out`` must equal the result row count."""

    @pytest.fixture
    def result(self):
        from helpers import make_company_cluster

        cluster = make_company_cluster(SystemConfig.ic_plus(4))
        return cluster.sql(JOIN_SQL)

    def test_clean_execution_passes(self, result):
        from repro.verify.invariants import validate_execution_result

        assert validate_execution_result(result) == []

    def test_rows_out_drift_is_flagged(self, result):
        from repro.verify.invariants import validate_execution_result

        root = next(f for f in result.fragment_trees if f.is_root)
        stats = next(
            s for s in result.fragments if s.fragment_id == root.fragment_id
        )
        stats.rows_out += 1  # the PR-2 class of accounting bug
        assert rules(validate_execution_result(result)) == {
            "root-rows-out-matches-result"
        }

    def test_check_raises_on_drift(self, result):
        from repro.verify.invariants import check_execution_result

        root = next(f for f in result.fragment_trees if f.is_root)
        stats = next(
            s for s in result.fragments if s.fragment_id == root.fragment_id
        )
        stats.rows_out = len(result.rows) + 7
        with pytest.raises(PlanInvariantError, match="rows_out"):
            check_execution_result(result)

    def test_missing_root_stats_is_flagged(self, result):
        from repro.verify.invariants import validate_execution_result

        root = next(f for f in result.fragment_trees if f.is_root)
        result.fragments = [
            s for s in result.fragments if s.fragment_id != root.fragment_id
        ]
        assert rules(validate_execution_result(result)) == {
            "root-fragment-has-stats"
        }


def _walk(plan):
    from repro.exec.physical import walk_physical

    return walk_physical(plan)
