"""Estimator accuracy with sketch statistics on vs off.

Three known-bad histogram-era estimates, each pinned as a q-error
comparison between a default cluster (histograms only) and one with
``sketch_statistics=True``:

* the skewed equi-join — 1/NDV prices a hot-key filter at a few rows
  while it passes most of the table, and Swami-Schiefer under-sizes the
  skewed many-to-many join;
* the big IN list over values that mostly do not exist — priced at
  ``len(list)/NDV`` of the table by the histogram path, near zero by
  Count-Min frequencies;
* the near-constant column — 1/NDV = half the table for the rare value.

Plus the regression the whole feature must not cause: with
``sketch_statistics=False`` (the default) nothing changes — no registry
is constructed, no sketch counter moves, and plans, rows and simulated
makespans are identical to a cluster that has never heard of sketches.
"""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.config import SystemConfig
from repro.core.cluster import IgniteCalciteCluster
from repro.obs.metrics import get_registry
from repro.stats.sketch_registry import SketchRegistry

pytestmark = pytest.mark.sketch

#: Hot join key: 90% of fact rows carry it; 200 distinct keys total.
HOT_KEY = 1
N_FACTS = 2000
N_KEYS = 200


def _load(config: SystemConfig) -> IgniteCalciteCluster:
    """A small skew-heavy cluster deterministic in everything.

    ``facts``: 90% of ``k`` = HOT_KEY, remainder spread over N_KEYS;
    ``v`` uniform over 0..4999; ``c`` constant 7 except one row of 8.
    """
    cluster = IgniteCalciteCluster(config)
    cluster.create_table(
        TableSchema(
            "dims",
            [Column("id", ColumnType.BIGINT), Column("name", ColumnType.VARCHAR)],
            ["id"],
        ),
        [(i, f"d{i}") for i in range(N_KEYS)],
    )
    facts = [
        (
            i,
            HOT_KEY if i % 10 else (i // 10) % N_KEYS,
            (i * 2503) % 5000,
            8 if i == 1234 else 7,
        )
        for i in range(N_FACTS)
    ]
    cluster.create_table(
        TableSchema(
            "facts",
            [
                Column("id", ColumnType.BIGINT),
                Column("k", ColumnType.BIGINT),
                Column("v", ColumnType.BIGINT),
                Column("c", ColumnType.BIGINT),
            ],
            ["id"],
        ),
        facts,
    )
    # Small many-to-many pair (unfiltered self-joins on the big facts
    # table would exceed the simulated runtime limit): 90% hot key.
    for name in ("mm1", "mm2"):
        cluster.create_table(
            TableSchema(
                name,
                [
                    Column("id", ColumnType.BIGINT),
                    Column("k", ColumnType.BIGINT),
                ],
                ["id"],
            ),
            [(i, HOT_KEY if i % 10 else (i // 10) % 50) for i in range(300)],
        )
    return cluster


@pytest.fixture
def clusters():
    base = SystemConfig.ic_plus(sites=4)
    return _load(base), _load(base.with_(sketch_statistics=True))


def _q_errors(off_cluster, on_cluster, sql):
    off = off_cluster.sql(sql)
    on = on_cluster.sql(sql)
    # Same rows in the same order (every query here has an ORDER BY).
    assert off.rows == on.rows
    return off.max_q_error(), on.max_q_error()


def test_skewed_hot_key_join(clusters):
    off_q, on_q = _q_errors(
        *clusters,
        "SELECT f.id, d.name FROM facts f JOIN dims d ON f.k = d.id "
        f"WHERE f.k = {HOT_KEY} ORDER BY f.id",
    )
    # Histograms: 2000/200 = 10 rows estimated, 1800 actual.
    assert off_q > 50
    assert on_q < 1.5
    assert on_q < off_q


def test_skewed_many_to_many_join(clusters):
    off_q, on_q = _q_errors(
        *clusters,
        "SELECT COUNT(*) FROM mm1 a JOIN mm2 b ON a.k = b.k",
    )
    # Swami-Schiefer: |A||B|/NDV = 1.8k; the hot key alone contributes
    # 270^2 = 72.9k pairs.  Fast-AGMS prices the inner product directly.
    assert off_q > 10
    assert on_q < 2.0
    assert on_q < off_q


def test_large_in_list_of_absent_values(clusters):
    in_list = ", ".join(str(v) for v in range(5000, 6000))
    off_q, on_q = _q_errors(
        *clusters,
        f"SELECT id FROM facts WHERE v IN ({in_list}) ORDER BY id",
    )
    # Histogram path: 1000/NDV(v) of the table survives the filter; the
    # values do not exist, so the truth is zero (floored at one row).
    # Count-Min still accumulates ~total/width of collision noise *per
    # summed member*, so 1000 absent members leave a small residue — the
    # pin is an order-of-magnitude improvement, not perfection.
    assert off_q > 100
    assert on_q < 30
    assert on_q < off_q / 10


def test_near_constant_column_rare_value(clusters):
    off_q, on_q = _q_errors(
        *clusters,
        "SELECT id FROM facts WHERE c = 8 ORDER BY id",
    )
    # 1/NDV = half the table for a value that occurs once.
    assert off_q > 100
    assert on_q < 2.0


def test_sketches_compose_with_feedback_not_override():
    """After a repeat execution, feedback actuals take precedence: the
    observed cardinality wins over any sketch estimate."""
    on_cluster = _load(
        SystemConfig.ic_plus(sites=4).with_(
            sketch_statistics=True, cardinality_feedback=True
        )
    )
    assert on_cluster.adaptive is not None
    sql = (
        "SELECT f.id, d.name FROM facts f JOIN dims d ON f.k = d.id "
        f"WHERE f.k = {HOT_KEY} ORDER BY f.id"
    )
    first = on_cluster.sql(sql)
    second = on_cluster.sql(sql)
    assert second.rows == first.rows
    # Feedback replaces estimates with actuals: q-error stays pinned.
    assert second.max_q_error() <= first.max_q_error() + 1e-9


# -- the off switch -----------------------------------------------------------


def test_default_config_builds_no_registry():
    config = SystemConfig.ic_plus(sites=4)
    assert config.sketch_statistics is False
    cluster = _load(config)
    assert cluster.sketches is None
    assert SketchRegistry.from_config(config, cluster.store) is None


def test_sketches_off_is_byte_identical_to_never_wired():
    """The default path must not change by a bit: same plan digests,
    same rows, same simulated makespans, zero sketch counters."""
    registry = get_registry()
    before = registry.counter("sketch.table_builds")
    base = SystemConfig.ic_plus(sites=4)
    off = _load(base)
    explicit_off = _load(base.with_(sketch_statistics=False))
    queries = [
        f"SELECT f.id, d.name FROM facts f JOIN dims d ON f.k = d.id "
        f"WHERE f.k = {HOT_KEY} ORDER BY f.id",
        "SELECT COUNT(*) FROM mm1 a JOIN mm2 b ON a.k = b.k",
        "SELECT id FROM facts WHERE c = 8 ORDER BY id",
    ]
    for sql in queries:
        assert off.plan_sql(sql).digest() == explicit_off.plan_sql(sql).digest()
        r1, r2 = off.sql(sql), explicit_off.sql(sql)
        assert r1.rows == r2.rows
        assert r1.simulated_seconds == r2.simulated_seconds
    assert registry.counter("sketch.table_builds") == before
    assert registry.counter("sketch.seam_refreshes") == 0
    assert registry.counter("sketch.operator_hits") == 0


def test_ddl_invalidates_table_sketches(clusters):
    """Reloading a table must drop its sketches (id-identity + explicit
    invalidation): estimates follow the new data, not the old."""
    _, on_cluster = clusters
    sql = f"SELECT id FROM facts WHERE k = {HOT_KEY} ORDER BY id"
    hot_rows = sum(
        1
        for i in range(N_FACTS)
        if (HOT_KEY if i % 10 else (i // 10) % N_KEYS) == HOT_KEY
    )
    assert len(on_cluster.sql(sql).rows) == hot_rows
    # Replace facts with a table where the hot key never appears.
    on_cluster.store.drop_table("facts")
    on_cluster.create_table(
        TableSchema(
            "facts",
            [
                Column("id", ColumnType.BIGINT),
                Column("k", ColumnType.BIGINT),
                Column("v", ColumnType.BIGINT),
                Column("c", ColumnType.BIGINT),
            ],
            ["id"],
        ),
        [(i, 5, i, 7) for i in range(10)],
    )
    result = on_cluster.sql(sql)
    assert result.rows == []
    # The new estimate reflects the new data: nothing survives k=1, so
    # the scan+filter estimates are tiny (no stale 1800-row guess).
    assert result.max_q_error() < 15


def test_seam_harvest_feeds_operator_distinct(clusters):
    """Rows crossing fragment seams refresh operator-level HLLs."""
    _, on_cluster = clusters
    registry = get_registry()
    on_cluster.sql(
        "SELECT f.id, d.name FROM facts f JOIN dims d ON f.k = d.id "
        "ORDER BY f.id"
    )
    assert registry.counter("sketch.seam_refreshes") >= 1
