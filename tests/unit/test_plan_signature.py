"""Unit tests for plan and operator signatures (repro.adaptive.signature)."""

import pytest

from repro.adaptive.signature import operator_signature, plan_signature
from repro.common.config import SystemConfig
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import (
    AggCall,
    AggFunc,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalSort,
    LogicalTableScan,
)

from helpers import make_company_cluster, make_company_store

pytestmark = pytest.mark.adaptive


@pytest.fixture(scope="module")
def cluster():
    return make_company_cluster(SystemConfig.ic_plus(4))


@pytest.fixture(scope="module")
def store():
    return make_company_store()


def scan(store, table):
    schema = store.table(table).schema
    return LogicalTableScan(table, table, schema.column_names)


class TestPlanSignature:
    def test_literals_parameterised_out(self, cluster):
        a = plan_signature(
            cluster.parse_to_logical("select name from emp where salary > 50000")
        )
        b = plan_signature(
            cluster.parse_to_logical("select name from emp where salary > 99000")
        )
        assert a.key == b.key
        assert a.literals != b.literals
        assert 50000 in a.literals and 99000 in b.literals

    def test_shape_changes_change_the_key(self, cluster):
        a = plan_signature(
            cluster.parse_to_logical("select name from emp where salary > 1")
        )
        b = plan_signature(
            cluster.parse_to_logical("select name from emp where salary < 1")
        )
        c = plan_signature(cluster.parse_to_logical("select name from emp"))
        assert len({a.key, b.key, c.key}) == 3

    def test_in_list_keeps_size_in_key(self, cluster):
        two = plan_signature(
            cluster.parse_to_logical(
                "select name from emp where dept_id in (1, 2)"
            )
        )
        three = plan_signature(
            cluster.parse_to_logical(
                "select name from emp where dept_id in (1, 2, 3)"
            )
        )
        assert two.key != three.key  # set size drives selectivity

    def test_fetch_is_part_of_the_key(self, cluster):
        a = plan_signature(
            cluster.parse_to_logical("select name from emp order by name limit 5")
        )
        b = plan_signature(
            cluster.parse_to_logical("select name from emp order by name limit 9")
        )
        assert a.key != b.key

    def test_deterministic(self, cluster):
        sql = "select dept_id, count(*) from emp group by dept_id"
        a = plan_signature(cluster.parse_to_logical(sql))
        b = plan_signature(cluster.parse_to_logical(sql))
        assert a == b


class TestOperatorSignature:
    def test_scan_matches_across_families(self, cluster, store):
        logical = scan(store, "emp")
        physical = cluster.plan_sql("select * from emp")
        sigs = {operator_signature(op) for op in _walk(physical)}
        assert operator_signature(logical) in sigs

    def test_conjunct_order_is_irrelevant(self, store):
        emp = scan(store, "emp")
        a = BinaryOp("=", ColRef(1), Literal(3))
        b = BinaryOp(">", ColRef(3), Literal(50000.0))
        one = LogicalFilter(emp, BinaryOp("AND", a, b))
        two = LogicalFilter(scan(store, "emp"), BinaryOp("AND", b, a))
        assert operator_signature(one) == operator_signature(two)

    def test_mirrored_comparison_is_canonical(self, store):
        emp = scan(store, "emp")
        colval = LogicalFilter(emp, BinaryOp(">", ColRef(3), Literal(5.0)))
        valcol = LogicalFilter(
            scan(store, "emp"), BinaryOp("<", Literal(5.0), ColRef(3))
        )
        assert operator_signature(colval) == operator_signature(valcol)

    def test_inner_join_is_commutative(self, store):
        emp, sales = scan(store, "emp"), scan(store, "sales")
        forward = LogicalJoin(
            emp, sales, BinaryOp("=", ColRef(0), ColRef(emp.width + 1))
        )
        backward = LogicalJoin(
            scan(store, "sales"),
            scan(store, "emp"),
            BinaryOp("=", ColRef(1), ColRef(scan(store, "sales").width + 0)),
        )
        assert operator_signature(forward) == operator_signature(backward)

    def test_wrappers_are_not_keyed(self, store):
        emp = scan(store, "emp")
        project = LogicalProject(emp, (ColRef(0),), ("emp_id",))
        assert operator_signature(project) is None
        assert operator_signature(LogicalSort(emp, ((0, True),))) is None

    def test_sort_with_fetch_is_keyed(self, store):
        node = LogicalSort(scan(store, "emp"), ((0, True),), fetch=7)
        signature = operator_signature(node)
        assert signature is not None and "L(7)" in signature

    def test_projection_is_transparent(self, store):
        emp = scan(store, "emp")
        agg = LogicalAggregate(emp, (1,), (AggCall(AggFunc.COUNT, None),))
        identity = LogicalProject(
            scan(store, "emp"),
            tuple(ColRef(i) for i in range(emp.width)),
            tuple(emp.fields),
        )
        projected = LogicalAggregate(
            identity, (1,), (AggCall(AggFunc.COUNT, None),)
        )
        assert operator_signature(agg) == operator_signature(projected)

    def test_literal_values_stay_in_operator_keys(self, store):
        """Operator signatures must NOT parameterise literals: feedback for
        ``dept_id = 3`` says nothing about ``dept_id = 4``."""
        three = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(1), Literal(3))
        )
        four = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(1), Literal(4))
        )
        assert operator_signature(three) != operator_signature(four)


def _walk(node):
    yield node
    for child in node.inputs:
        yield from _walk(child)
