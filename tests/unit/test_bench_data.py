"""Unit tests for the TPC-H and SSB mini data generators."""

import pytest

from repro.bench.ssb import (
    SSB_INDEXES,
    SSB_QUERIES,
    generate_ssb,
    ssb_schemas,
)
from repro.bench.tpch import (
    ENABLED_QUERY_IDS,
    QUERIES,
    TPCH_INDEXES,
    generate_tpch,
    table_cardinalities,
    tpch_schemas,
)


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(0.2)


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.2)


class TestTpchShape:
    def test_fixed_tables(self, tpch):
        assert len(tpch["region"]) == 5
        assert len(tpch["nation"]) == 25

    def test_cardinality_ratios(self, tpch):
        counts = table_cardinalities(0.2)
        assert len(tpch["supplier"]) == counts["supplier"]
        assert len(tpch["customer"]) == counts["customer"]
        assert len(tpch["part"]) == counts["part"]
        assert len(tpch["orders"]) == counts["orders"]
        assert len(tpch["partsupp"]) == 4 * len(tpch["part"])
        # ~4 lineitems per order.
        ratio = len(tpch["lineitem"]) / len(tpch["orders"])
        assert 3.0 <= ratio <= 5.0

    def test_scaling_is_linear(self):
        small = table_cardinalities(0.2)
        large = table_cardinalities(0.4)
        assert large["orders"] == pytest.approx(2 * small["orders"], rel=0.05)

    def test_determinism(self):
        assert generate_tpch(0.1) == generate_tpch(0.1)

    def test_seed_changes_data(self):
        assert generate_tpch(0.1, seed=1) != generate_tpch(0.1, seed=2)


class TestTpchReferentialIntegrity:
    def test_nation_region_keys(self, tpch):
        regions = {r[0] for r in tpch["region"]}
        assert {n[2] for n in tpch["nation"]} <= regions

    def test_supplier_and_customer_nations(self, tpch):
        nations = {n[0] for n in tpch["nation"]}
        assert {s[3] for s in tpch["supplier"]} <= nations
        assert {c[3] for c in tpch["customer"]} <= nations

    def test_orders_reference_customers(self, tpch):
        customers = {c[0] for c in tpch["customer"]}
        assert {o[1] for o in tpch["orders"]} <= customers

    def test_third_of_customers_have_no_orders(self, tpch):
        """The spec (and Q22) requires custkeys divisible by 3 be skipped."""
        ordering = {o[1] for o in tpch["orders"]}
        assert all(key % 3 != 0 for key in ordering)

    def test_lineitems_reference_orders_parts_suppliers(self, tpch):
        orders = {o[0] for o in tpch["orders"]}
        parts = {p[0] for p in tpch["part"]}
        suppliers = {s[0] for s in tpch["supplier"]}
        for li in tpch["lineitem"][:500]:
            assert li[0] in orders
            assert li[1] in parts
            assert li[2] in suppliers

    def test_lineitem_part_supplier_pairs_exist_in_partsupp(self, tpch):
        pairs = {(ps[0], ps[1]) for ps in tpch["partsupp"]}
        for li in tpch["lineitem"][:500]:
            assert (li[1], li[2]) in pairs

    def test_date_ordering_invariants(self, tpch):
        for li in tpch["lineitem"][:500]:
            ship, commit, receipt = li[10], li[11], li[12]
            assert ship < receipt
            assert len(ship) == len(commit) == len(receipt) == 10


class TestTpchPredicateCoverage:
    """Every workload predicate must select a non-trivial subset."""

    def test_q6_discount_window(self, tpch):
        hits = [
            li for li in tpch["lineitem"] if 0.05 <= li[6] <= 0.07
        ]
        assert 0 < len(hits) < len(tpch["lineitem"])

    def test_brand_and_container_domains(self, tpch):
        brands = {p[3] for p in tpch["part"]}
        containers = {p[6] for p in tpch["part"]}
        assert "Brand#23" in brands
        assert "MED BOX" in containers

    def test_ship_modes_and_instructions(self, tpch):
        modes = {li[14] for li in tpch["lineitem"]}
        assert {"MAIL", "SHIP", "AIR", "REG AIR"} <= modes
        instructions = {li[13] for li in tpch["lineitem"]}
        assert "DELIVER IN PERSON" in instructions

    def test_q13_comment_marker_frequency(self, tpch):
        special = [
            o for o in tpch["orders"]
            if "special" in o[8] and "requests" in o[8]
        ]
        assert 0 < len(special) < len(tpch["orders"]) * 0.05

    def test_q22_phone_country_codes(self, tpch):
        codes = {c[4][:2] for c in tpch["customer"]}
        assert {"13", "31", "23"} <= codes

    def test_q9_green_parts_exist(self, tpch):
        assert any("green" in p[1] for p in tpch["part"])


class TestSchemasAndIndexes:
    def test_tpch_schema_count(self):
        assert len(tpch_schemas()) == 8

    def test_sixteen_tpch_indexes(self):
        assert len(TPCH_INDEXES) == 16
        tables = {t for t, _, _ in TPCH_INDEXES}
        assert tables == set(tpch_schemas())

    def test_nine_ssb_indexes(self):
        assert len(SSB_INDEXES) == 9
        lineorder = [i for i in SSB_INDEXES if i[0] == "lineorder"]
        assert len(lineorder) == 5  # pk + the four join columns

    def test_replication_choices(self):
        schemas = tpch_schemas()
        assert schemas["nation"].replicated
        assert schemas["region"].replicated
        assert not schemas["lineitem"].replicated
        assert ssb_schemas()["date_dim"].replicated

    def test_colocation_affinities(self):
        schemas = tpch_schemas()
        assert schemas["lineitem"].affinity_key == "l_orderkey"
        assert schemas["partsupp"].affinity_key == "ps_partkey"
        assert ssb_schemas()["lineorder"].affinity_key == "lo_orderkey"


class TestSsbShape:
    def test_date_dimension_is_complete(self, ssb):
        dates = ssb["date_dim"]
        assert len(dates) == 2557  # 1992-01-01 .. 1998-12-31
        years = {d[4] for d in dates}
        assert years == set(range(1992, 1999))

    def test_lineorder_dates_exist_in_dimension(self, ssb):
        keys = {d[0] for d in ssb["date_dim"]}
        for lo in ssb["lineorder"][:500]:
            assert lo[5] in keys
            assert lo[15] in keys

    def test_city_name_format(self, ssb):
        for c in ssb["customer"][:50]:
            assert c[3].startswith(c[4][:9])

    def test_brand_hierarchy(self, ssb):
        for p in ssb["part"][:200]:
            mfgr, category, brand = p[2], p[3], p[4]
            assert category.startswith(mfgr)
            assert brand.startswith(category)


class TestQueryMetadata:
    def test_twenty_two_queries(self):
        assert sorted(QUERIES) == list(range(1, 23))

    def test_disabled_queries(self):
        disabled = {qid for qid, s in QUERIES.items() if s.disabled}
        assert disabled == {15, 20}
        assert len(ENABLED_QUERY_IDS) == 20

    def test_thirteen_ssb_queries(self):
        assert len(SSB_QUERIES) == 13
        flights = sorted({s.flight for s in SSB_QUERIES.values()})
        assert flights == [1, 2, 3, 4]

    def test_sql_texts_are_nonempty(self):
        for spec in QUERIES.values():
            assert spec.sql.strip().lower().startswith(("select", "create"))
        for spec in SSB_QUERIES.values():
            assert spec.sql.strip().lower().startswith("select")
