"""Unit tests for the execution engine's orchestration layer."""

import pytest

from repro.common.config import SystemConfig
from repro.exec.engine import ExecutionEngine
from repro.planner.volcano import QueryPlanner
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

from helpers import make_company_store


@pytest.fixture(scope="module")
def store():
    return make_company_store()


def run(store, config, sql):
    logical = SqlToRelConverter(store.catalog).convert(parse(sql))
    plan = QueryPlanner(store, config).plan(logical)
    return ExecutionEngine(store, config).execute(plan)


class TestAccounting:
    def test_distributed_plan_creates_multi_site_tasks(self, store):
        result = run(
            store, SystemConfig.ic_plus(),
            "select dept_id, count(*) from emp group by dept_id",
        )
        sites = {t.site for t in result.task_graph.tasks}
        assert len(sites) > 1

    def test_fragment_stats_cover_all_fragments(self, store):
        result = run(
            store, SystemConfig.ic_plus(),
            "select e.name from emp e, sales s where e.emp_id = s.emp_id",
        )
        assert len(result.fragments) >= 2
        assert any(f.units > 0 for f in result.fragments)

    def test_broadcast_ships_one_copy_per_site(self, store):
        """Joining against the replicated dept table ships nothing; the
        partitioned emp table must ship when gathered to one site."""
        local = run(
            store, SystemConfig.ic_plus(),
            "select e.name, d.dept_name from emp e, dept d "
            "where e.dept_id = d.dept_id",
        )
        assert local.rows_shipped < store.row_count("emp") * 2

    def test_variant_fragments_multiply_tasks(self):
        # Needs enough per-site work to clear the VARIANT_MIN_UNITS guard.
        from helpers import make_company_store

        big = make_company_store(employees=8000, sales=20000)
        sql = "select dept_id, count(*) from emp group by dept_id"
        single = run(big, SystemConfig.ic_plus(), sql)
        multi = run(big, SystemConfig.ic_plus_m(), sql)
        assert len(multi.task_graph.tasks) > len(single.task_graph.tasks)

    def test_tiny_fragments_skip_variants(self, store):
        """Below VARIANT_MIN_UNITS per site, no variant tasks are spawned."""
        sql = "select count(*) from dept"
        single = run(store, SystemConfig.ic_plus(), sql)
        multi = run(store, SystemConfig.ic_plus_m(), sql)
        assert len(multi.task_graph.tasks) == len(single.task_graph.tasks)

    def test_three_threads_configuration(self, store):
        config = SystemConfig.ic_plus_m(threads=3)
        result = run(
            store, config,
            "select dept_id, count(*) from emp group by dept_id",
        )
        assert result.rows  # still correct with n=3

    def test_makespan_consistent_with_units(self, store):
        from repro.common.constants import CORE_UNITS_PER_SECOND

        result = run(store, SystemConfig.ic_plus(), "select count(*) from emp")
        lower = result.task_graph.critical_path_units() / CORE_UNITS_PER_SECOND
        assert result.simulated_seconds >= lower - 1e-9


class TestRuntimeLimit:
    def test_limit_is_wall_clock_not_per_site(self, store):
        """The limit must not stretch with cluster size."""
        sql = (
            "select e1.name from emp e1, sales s1 "
            "where e1.salary * s1.amount > 999999999999.0"
        )
        config4 = SystemConfig.ic_plus(sites=4).with_(
            runtime_limit_seconds=0.001
        )
        from repro.common.errors import ExecutionTimeoutError

        with pytest.raises(ExecutionTimeoutError):
            run(store, config4, sql)

    def test_generous_limit_allows_cross_products(self, store):
        config = SystemConfig.ic_plus().with_(runtime_limit_seconds=3600)
        result = run(
            store, config,
            "select count(*) from emp e1, dept d where e1.salary > d.budget",
        )
        assert result.rows[0][0] > 0


class TestDeterminism:
    def test_repeated_execution_is_identical(self, store):
        sql = "select dept_id, sum(salary) from emp group by dept_id"
        a = run(store, SystemConfig.ic_plus_m(), sql)
        b = run(store, SystemConfig.ic_plus_m(), sql)
        assert a.simulated_seconds == b.simulated_seconds
        assert a.total_units == b.total_units
        assert sorted(a.rows) == sorted(b.rows)
