"""Unit tests for the Volcano stage: phases, budget, join ordering."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import PlanningTimeoutError
from repro.exec.physical import PhysNode
from repro.planner.volcano import (
    QueryPlanner,
    _redundant_equi_connections,
)
from repro.rel.expr import BinaryOp, ColRef, make_conjunction
from repro.rel.logical import (
    JoinType,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalTableScan,
)
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

from helpers import make_company_store, naive_execute, normalise


@pytest.fixture(scope="module")
def store():
    return make_company_store()


def plan_sql(store, config, sql):
    logical = SqlToRelConverter(store.catalog).convert(parse(sql))
    return QueryPlanner(store, config).plan(logical)


class TestPhases:
    def test_both_variants_plan_simple_queries(self, store):
        sql = (
            "select e.name, s.amount from emp e, sales s "
            "where e.emp_id = s.emp_id and s.amount > 100"
        )
        for config in (SystemConfig.ic(), SystemConfig.ic_plus()):
            plan = plan_sql(store, config, sql)
            assert isinstance(plan, PhysNode)
            assert plan.distribution.is_single or plan.distribution.is_broadcast

    def test_hep_budget_is_charged(self, store):
        config = SystemConfig.ic_plus().with_(planning_budget=1)
        with pytest.raises(PlanningTimeoutError):
            plan_sql(store, config, "select emp_id from emp where emp_id = 1")

    def test_two_phase_reorders_small_joins(self, store):
        """With permutations enabled, the selective filter should end up
        driving the join order (cheapest plan wins)."""
        sql = (
            "select e.name from dept d, emp e, sales s "
            "where d.dept_id = e.dept_id and e.emp_id = s.emp_id "
            "and s.amount > 4999.0"
        )
        plan = plan_sql(store, SystemConfig.ic_plus(), sql)
        assert isinstance(plan, PhysNode)

    def test_permutations_disabled_above_thresholds(self, store):
        config = SystemConfig.ic_plus().with_(max_joins_for_permutation=0)
        sql = (
            "select e.name from emp e, sales s where e.emp_id = s.emp_id"
        )
        plan = plan_sql(store, config, sql)
        assert isinstance(plan, PhysNode)


class TestSinglePhaseSpace:
    def _chain(self, tables, extra_edges=()):
        """A join chain over synthetic scans with unit-width outputs."""
        scans = [LogicalTableScan("emp", f"t{i}", ["emp_id", "dept_id", "name", "salary", "hired"]) for i in range(tables)]
        tree = scans[0]
        offset = scans[0].width
        conjuncts = []
        for scan in scans[1:]:
            conjuncts.append(BinaryOp("=", ColRef(0), ColRef(offset)))
            tree = LogicalJoin(tree, scan, conjuncts[-1])
            offset += scan.width
        return tree

    def test_acyclic_chain_has_no_redundancy(self):
        assert _redundant_equi_connections(self._chain(4)) == 0

    def test_redundant_class_detected(self):
        """Three relations equated on the same key through a triangle of
        predicates: one connection is redundant."""
        scans = [
            LogicalTableScan("emp", f"t{i}", ["a", "b"]) for i in range(3)
        ]
        tree = LogicalJoin(
            LogicalJoin(
                scans[0], scans[1], BinaryOp("=", ColRef(0), ColRef(2))
            ),
            scans[2],
            make_conjunction(
                [
                    BinaryOp("=", ColRef(0), ColRef(4)),
                    BinaryOp("=", ColRef(2), ColRef(5)),
                ]
            ),
        )
        # Class {t0.a, t1.a, t2.a} via two predicates plus the separate
        # {t1.a, t2.b} class: count connections vs spanning tree.
        assert _redundant_equi_connections(tree) >= 0  # smoke: no crash

    def test_fewer_than_three_scans_is_zero(self):
        assert _redundant_equi_connections(self._chain(2)) == 0

    def test_baseline_fails_on_cyclic_many_join_queries(self, store):
        """The Q2/Q5/Q9 mechanism: cyclic equi classes + >4 joins blow the
        single-phase budget."""
        # A six-way join whose first three relations form a cycle through
        # *different* key columns (the Q5 shape: the customer-supplier
        # nationkey class closes a loop with the order/lineitem chain).
        sql = (
            "select e1.name from emp e1, emp e2, emp e3, emp e4, emp e5, "
            "emp e6 where e1.emp_id = e2.emp_id "
            "and e2.dept_id = e3.dept_id and e1.salary = e3.salary "
            "and e3.hired = e4.hired and e4.name = e5.name "
            "and e5.emp_id = e6.emp_id"
        )
        with pytest.raises(PlanningTimeoutError):
            plan_sql(store, SystemConfig.ic(), sql)
        # The two-phase planner handles the same query.
        plan = plan_sql(store, SystemConfig.ic_plus(), sql)
        assert isinstance(plan, PhysNode)

    def test_baseline_handles_acyclic_many_join_queries(self, store):
        """Tree-shaped joins (Q7/Q8-like) plan fine on the baseline."""
        sql = (
            "select e1.name from emp e1, emp e2, emp e3, emp e4, emp e5, "
            "emp e6 where e1.emp_id = e2.emp_id and e2.dept_id = e3.dept_id "
            "and e3.salary = e4.salary and e4.hired = e5.hired "
            "and e5.name = e6.name"
        )
        plan = plan_sql(store, SystemConfig.ic(), sql)
        assert isinstance(plan, PhysNode)


class TestJoinOrderCorrectness:
    """Reordered plans must return the same rows as the naive oracle."""

    @pytest.mark.parametrize(
        "sql",
        [
            "select e.name, d.dept_name from emp e, dept d "
            "where e.dept_id = d.dept_id and e.salary > 150000",
            "select d.dept_name, s.amount from dept d, emp e, sales s "
            "where d.dept_id = e.dept_id and e.emp_id = s.emp_id "
            "and s.amount > 4000",
            "select s.region from sales s, emp e, dept d "
            "where s.emp_id = e.emp_id and e.dept_id = d.dept_id "
            "and d.budget > 50000 and s.amount < 100",
        ],
    )
    def test_reordered_results_match_oracle(self, store, sql):
        logical = SqlToRelConverter(store.catalog).convert(parse(sql))
        expected = normalise(naive_execute(logical, store))
        from repro.exec.engine import ExecutionEngine

        for config in (SystemConfig.ic(), SystemConfig.ic_plus()):
            plan = QueryPlanner(store, config).plan(logical)
            result = ExecutionEngine(store, config).execute(plan)
            assert normalise(result.rows) == expected, config.name
