"""Regression tests for ExecutionEngine accounting and planning-cost bugs.

Seed bugs covered here: ``FragmentStats.rows_out`` was initialised to 0
and never accumulated, and ``_source_rows`` recomputed
``plan_variants(fragment)`` from scratch for every qualifying site even
though ``_build_task_graph`` already held the variant plan.
"""

import repro.exec.engine as engine_module
from helpers import make_company_store
from repro.common.config import SystemConfig
from repro.exec.engine import ExecutionEngine
from repro.planner.volcano import QueryPlanner
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

JOIN_SQL = (
    "select e.name, s.amount from emp e, sales s "
    "where e.emp_id = s.emp_id and s.amount > 100"
)


def run(sql: str, config: SystemConfig, store=None):
    store = store or make_company_store(sites=config.sites)
    logical = SqlToRelConverter(store.catalog).convert(parse(sql))
    plan = QueryPlanner(store, config).plan(logical)
    return ExecutionEngine(store, config).execute(plan)


class TestFragmentRowsOut:
    def test_root_fragment_rows_out_matches_result(self):
        result = run(JOIN_SQL, SystemConfig.ic_plus(4))
        assert len(result.rows) > 0
        for tree, stats in zip(result.fragment_trees, result.fragments):
            if tree.is_root:
                assert stats.rows_out == len(result.rows)

    def test_intermediate_fragments_report_produced_rows(self):
        result = run(JOIN_SQL, SystemConfig.ic_plus(4))
        non_root = [
            stats
            for tree, stats in zip(result.fragment_trees, result.fragments)
            if not tree.is_root
        ]
        assert non_root, "expected a distributed plan with >1 fragment"
        # Every fragment in this query produces rows (scans feed the
        # join, the join feeds the root); none may report zero.
        for stats in non_root:
            assert stats.rows_out > 0

    def test_single_fragment_query_rows_out(self):
        result = run(
            "select region, count(*) from sales group by region",
            SystemConfig.ic_plus(4),
        )
        root_stats = [
            stats
            for tree, stats in zip(result.fragment_trees, result.fragments)
            if tree.is_root
        ]
        assert len(root_stats) == 1
        assert root_stats[0].rows_out == len(result.rows) == 4


class TestSourceRowsReuse:
    def test_variant_planning_runs_once_per_fragment(self, monkeypatch):
        calls = []
        original = engine_module.plan_variants

        def counting(fragment):
            calls.append(fragment.fragment_id)
            return original(fragment)

        monkeypatch.setattr(engine_module, "plan_variants", counting)
        config = SystemConfig.ic_plus_m(4)
        # Enough rows that the big fragment crosses VARIANT_MIN_UNITS at
        # every site, exercising the per-site _source_rows path.
        store = make_company_store(sites=4, sales=2000)
        result = run(JOIN_SQL, config, store=store)
        assert any(stats.variants > 1 for stats in result.fragments)
        # One variant-planning pass per fragment: _build_task_graph plans
        # once and threads the result into _source_rows for every site.
        assert len(calls) == len(result.fragment_trees)

    def test_variant_execution_unchanged_by_reuse(self):
        config = SystemConfig.ic_plus_m(4)
        store = make_company_store(sites=4, sales=2000)
        multi = run(JOIN_SQL, config, store=store)
        single = run(JOIN_SQL, SystemConfig.ic_plus(4), store=store)
        assert sorted(multi.rows) == sorted(single.rows)
        assert multi.simulated_seconds > 0
