"""Unit tests for the vectorized columnar backend's building blocks.

Every claim here is of the same shape: the columnar kernel must agree
*exactly* — values, Python types, NULL placement, row order — with the
row-path code it replaces (``compile_expr``, ``sort_rows``, the LIKE
matcher).  Bit-identity is the backend's core contract; "close enough"
floats or ints silently widened to floats are bugs.
"""

import random

import numpy as np
import pytest

from repro.exec.columnar import (
    ColumnBatch,
    column_from_values,
    concat_batches,
    concat_columns,
    eval_expr,
    from_rows,
    sort_batch,
)
from repro.exec.operators import sort_rows
from repro.rel.expr import (
    BinaryOp,
    CaseExpr,
    ColRef,
    FuncCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    UnaryOp,
    compile_expr,
)

pytestmark = pytest.mark.columnar


class TestColumnFromValues:
    def test_kinds(self):
        assert column_from_values([1, 2, 3]).kind == "i"
        assert column_from_values([1.5, 2.0]).kind == "f"
        assert column_from_values(["a", "bc"]).kind == "U"
        assert column_from_values([True, False]).kind == "b"
        assert column_from_values([1, "a"]).kind == "O"
        # int-vs-float is a *type* distinction SQL results preserve.
        assert column_from_values([1, 2.0]).kind == "O"

    def test_nulls_get_a_mask(self):
        col = column_from_values([1, None, 3])
        assert col.kind == "i"
        assert col.mask is not None and col.mask.tolist() == [False, True, False]
        assert col.to_list() == [1, None, 3]

    def test_all_null_column_is_object(self):
        col = column_from_values([None, None])
        assert col.to_list() == [None, None]

    def test_wide_strings_demote_to_object(self):
        wide = "x" * 64
        col = column_from_values(["a", wide])
        assert col.kind == "O"
        assert col.to_list() == ["a", wide]

    def test_huge_int_falls_back_to_object(self):
        big = 2**70
        col = column_from_values([1, big])
        assert col.kind == "O"
        assert col.to_list() == [1, big]


class TestBatchRoundTrip:
    def test_to_rows_preserves_types_exactly(self):
        rows = [
            (1, 1.5, "a", True, None),
            (2, -0.0, "bb", False, "x"),
            (None, None, None, None, None),
        ]
        out = from_rows(rows, 5).to_rows()
        assert out == rows
        for got, want in zip(out, rows):
            assert [type(v) for v in got] == [type(v) for v in want]

    def test_zero_width_rows(self):
        rows = [(), (), ()]
        assert from_rows(rows, 0).to_rows() == rows

    def test_concat_mixed_kind_columns_keeps_ints_ints(self):
        # One part inferred int64, the other float64: naive
        # np.concatenate would rewrite 1 -> 1.0.
        a = column_from_values([1, 2])
        b = column_from_values([1.5, None])
        merged = concat_columns([a, b])
        assert merged.to_list() == [1, 2, 1.5, None]
        assert [type(v) for v in merged.to_list()[:3]] == [int, int, float]

    def test_concat_batches_matches_from_rows(self):
        rows1 = [(1, "a"), (2, None)]
        rows2 = [(3.5, "b" * 50)]
        merged = concat_batches([from_rows(rows1, 2), from_rows(rows2, 2)], 2)
        assert merged.to_rows() == from_rows(rows1 + rows2, 2).to_rows()


def _assert_matches_row_path(expr, rows, width):
    batch = from_rows(rows, width)
    got = eval_expr(expr, batch).to_list()
    fn = compile_expr(expr)
    want = [fn(row) for row in rows]
    assert got == want, f"{expr.digest()}: {got} != {want}"
    for g, w in zip(got, want):
        assert type(g) is type(w), f"{expr.digest()}: {type(g)} vs {type(w)}"


class TestEvalExpr:
    ROWS = [
        (1, 2.5, "apple", None, True),
        (2, None, "banana", 7, False),
        (None, -1.0, None, 0, None),
        (4, 0.0, "cherry pie", -3, True),
    ]

    def check(self, expr):
        _assert_matches_row_path(expr, self.ROWS, 5)

    def test_arithmetic_and_comparisons(self):
        c0, c1 = ColRef(0), ColRef(1)
        for op in ("+", "-", "*", "<", "<=", ">", ">=", "=", "<>"):
            self.check(BinaryOp(op, c0, Literal(2)))
            self.check(BinaryOp(op, c1, c0))

    def test_division_short_circuits_like_rows(self):
        # x = 0 OR 1 / x > 0 must not raise on the x = 0 row.
        c3 = ColRef(3)
        self.check(
            BinaryOp(
                "OR",
                BinaryOp("=", c3, Literal(0)),
                BinaryOp(">", BinaryOp("/", Literal(1), c3), Literal(0)),
            )
        )

    def test_and_or_null_semantics(self):
        c4, c0 = ColRef(4), ColRef(0)
        gt = BinaryOp(">", c0, Literal(1))
        self.check(BinaryOp("AND", c4, gt))
        self.check(BinaryOp("OR", c4, gt))

    def test_is_null_and_not(self):
        self.check(IsNull(ColRef(1)))
        self.check(IsNull(ColRef(1), negated=True))
        self.check(UnaryOp("NOT", ColRef(4)))

    def test_in_list(self):
        self.check(InList(ColRef(0), (1, 4)))
        self.check(InList(ColRef(2), ("apple", "kiwi"), negated=True))

    def test_case(self):
        expr = CaseExpr(
            [(BinaryOp(">", ColRef(0), Literal(1)), Literal("big"))],
            Literal("small"),
        )
        self.check(expr)

    def test_functions(self):
        rows = [("1995-03-17",), ("2024-12-01",), (None,)]
        for fname in ("EXTRACT_YEAR", "EXTRACT_MONTH"):
            _assert_matches_row_path(FuncCall(fname, (ColRef(0),)), rows, 1)
        self.check(FuncCall("ABS", (ColRef(1),)))
        self.check(FuncCall("UPPER", (ColRef(2),)))


class TestVectorizedLike:
    PATTERNS = [
        "%", "a%", "%e", "%an%", "a%e", "%a%n%", "apple", "", "%%",
        "_pple", "a__le", "%p_e",
    ]

    def test_like_fuzz_matches_row_matcher(self):
        rng = random.Random(42)
        alphabet = "abcnple "
        for trial in range(200):
            pattern = rng.choice(self.PATTERNS)
            values = [
                None
                if rng.random() < 0.15
                else "".join(
                    rng.choice(alphabet) for _ in range(rng.randrange(0, 12))
                )
                for _ in range(rng.randrange(1, 9))
            ]
            # Exercise both the fixed-width and the demoted object path.
            if trial % 2:
                values = [
                    v + "x" * 40 if v is not None and trial % 4 == 1 else v
                    for v in values
                ]
            rows = [(v,) for v in values]
            expr = LikeExpr(ColRef(0), pattern, negated=bool(trial % 3 == 0))
            _assert_matches_row_path(expr, rows, 1)


class TestSortBatch:
    def test_matches_sort_rows_with_nulls_and_desc(self):
        rng = random.Random(7)
        for _ in range(50):
            rows = [
                (
                    rng.choice([None, 1, 2, 3]),
                    rng.choice([None, "a", "b"]),
                    rng.random(),
                )
                for _ in range(rng.randrange(0, 20))
            ]
            keys = [
                (rng.randrange(3), rng.random() < 0.5)
                for _ in range(rng.randrange(1, 3))
            ]
            got = sort_batch(from_rows(rows, 3), keys).to_rows()
            assert got == sort_rows(rows, keys)

    def test_stability(self):
        rows = [(1, i) for i in range(10)] + [(0, i) for i in range(10)]
        got = sort_batch(from_rows(rows, 2), [(0, True)]).to_rows()
        assert got == sort_rows(rows, [(0, True)])
        assert [r[1] for r in got[:10]] == list(range(10))


class TestBatchErrors:
    def test_unmaterialised_column_raises(self):
        from repro.common.errors import ExecutionError

        batch = ColumnBatch([None, column_from_values([1])], 1)
        with pytest.raises(ExecutionError):
            batch.column(0)
        with pytest.raises(ExecutionError):
            batch.to_rows()
