"""Unit tests for the deterministic fault injector."""

import pytest

from repro.common.errors import ExecutionError
from repro.faults.injector import (
    ANY,
    ExchangeDelay,
    ExchangeDrop,
    FaultInjector,
    FragmentOom,
    SiteCrash,
    SiteSlowdown,
    failover_owner,
    parse_fault,
    random_schedule,
)


class TestParseFault:
    def test_kill_site_with_time(self):
        assert parse_fault("kill-site", "2@t=0.5") == SiteCrash(site=2, at=0.5)

    def test_kill_site_defaults_to_time_zero(self):
        assert parse_fault("kill-site", "3") == SiteCrash(site=3, at=0.0)

    def test_slow_site_parses_factor(self):
        assert parse_fault("slow-site", "1x4@t=0.2") == SiteSlowdown(
            site=1, factor=4.0, at=0.2
        )

    def test_slow_site_requires_factor(self):
        with pytest.raises(ExecutionError):
            parse_fault("slow-site", "1@t=0.2")

    def test_delay_exchange_factor_is_seconds(self):
        assert parse_fault("delay-exchange", "0x0.5@t=0.1") == ExchangeDelay(
            exchange_id=0, delay_seconds=0.5, at=0.1
        )

    def test_drop_exchange_wildcard(self):
        assert parse_fault("drop-exchange", "-1") == ExchangeDrop(
            exchange_id=ANY, at=0.0
        )

    def test_oom_fragment(self):
        assert parse_fault("oom-fragment", "2@t=1.5") == FragmentOom(
            fragment_id=2, at=1.5
        )

    @pytest.mark.parametrize("bad", ["", "abc", "2@t=", "x4", "2@0.5"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ExecutionError):
            parse_fault("kill-site", bad)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionError):
            parse_fault("melt-cpu", "1")


class TestFailoverOwner:
    def test_alive_primary_keeps_ownership(self):
        assert failover_owner(5, 4, [0, 1, 2, 3]) == 5 % 4

    def test_dead_primary_fails_over_deterministically(self):
        alive = [0, 2, 3]  # site 1 died
        assert failover_owner(1, 4, alive) == alive[1 % 3]

    def test_every_partition_lands_on_a_survivor(self):
        alive = [0, 3]
        for partition in range(32):
            assert failover_owner(partition, 4, alive) in alive

    def test_copartitioned_tables_stay_colocated(self):
        # Scans and hash routing share this function: equal partition
        # numbers must map to the same site whatever the failure pattern.
        for alive in ([0, 1, 3], [2], [1, 2]):
            for partition in range(16):
                a = failover_owner(partition, 4, alive)
                b = failover_owner(partition, 4, alive)
                assert a == b

    def test_no_survivors_raises(self):
        with pytest.raises(ExecutionError):
            failover_owner(0, 4, [])


class TestSiteLiveness:
    def test_dead_sites_respects_time(self):
        injector = FaultInjector([SiteCrash(1, at=0.5), SiteCrash(2, at=2.0)])
        assert injector.dead_sites(0.0) == frozenset()
        assert injector.dead_sites(0.5) == {1}
        assert injector.dead_sites(3.0) == {1, 2}

    def test_alive_sites_complements_dead(self):
        injector = FaultInjector([SiteCrash(0, at=0.0)])
        assert injector.alive_sites(4, 0.0) == [1, 2, 3]

    def test_scheduler_events_sorted_by_time(self):
        injector = FaultInjector(
            [SiteSlowdown(0, 2.0, at=1.0), SiteCrash(3, at=0.25)]
        )
        events = injector.scheduler_events()
        assert events == [
            (0.25, "crash", (3,)),
            (1.0, "slow", (0, 2.0)),
        ]

    def test_one_shot_faults_are_not_scheduler_events(self):
        injector = FaultInjector([ExchangeDrop(0), FragmentOom(1)])
        assert injector.scheduler_events() == []


class TestOneShotFaults:
    def test_drop_fires_exactly_once(self):
        injector = FaultInjector([ExchangeDrop(exchange_id=7, at=0.0)])
        assert injector.take_exchange_drop(7, at=0.0)
        assert not injector.take_exchange_drop(7, at=0.0)

    def test_drop_waits_for_its_time(self):
        injector = FaultInjector([ExchangeDrop(exchange_id=7, at=1.0)])
        assert not injector.take_exchange_drop(7, at=0.5)
        assert injector.take_exchange_drop(7, at=1.0)

    def test_drop_wildcard_matches_any_exchange(self):
        injector = FaultInjector([ExchangeDrop(exchange_id=ANY)])
        assert injector.take_exchange_drop(42, at=0.0)
        assert not injector.take_exchange_drop(43, at=0.0)

    def test_oom_is_one_shot_per_spec(self):
        injector = FaultInjector(
            [FragmentOom(fragment_id=2), FragmentOom(fragment_id=2)]
        )
        assert injector.take_fragment_oom(2, at=0.0)
        assert injector.take_fragment_oom(2, at=0.0)  # second spec
        assert not injector.take_fragment_oom(2, at=0.0)

    def test_mismatched_id_does_not_consume(self):
        injector = FaultInjector([FragmentOom(fragment_id=2)])
        assert not injector.take_fragment_oom(3, at=0.0)
        assert injector.take_fragment_oom(2, at=0.0)

    def test_reset_rearms_consumed_faults(self):
        injector = FaultInjector([ExchangeDrop(exchange_id=ANY)])
        assert injector.take_exchange_drop(0, at=0.0)
        injector.reset()
        assert injector.take_exchange_drop(0, at=0.0)


class TestExchangeDelay:
    def test_delays_sum_and_filter_by_exchange(self):
        injector = FaultInjector(
            [
                ExchangeDelay(exchange_id=1, delay_seconds=0.5),
                ExchangeDelay(exchange_id=ANY, delay_seconds=0.25),
                ExchangeDelay(exchange_id=2, delay_seconds=9.0),
            ]
        )
        assert injector.exchange_delay_seconds(1, at=0.0) == pytest.approx(0.75)
        assert injector.exchange_delay_seconds(3, at=0.0) == pytest.approx(0.25)

    def test_delay_not_active_before_its_time(self):
        injector = FaultInjector([ExchangeDelay(1, 0.5, at=2.0)])
        assert injector.exchange_delay_seconds(1, at=1.0) == 0.0


class TestComposition:
    def test_from_config_is_none_without_faults(self):
        from repro.common.config import SystemConfig

        assert FaultInjector.from_config(SystemConfig.ic_plus(4)) is None

    def test_from_config_wraps_schedule(self):
        from repro.common.config import SystemConfig

        config = SystemConfig.ic_plus(4).with_(faults=(SiteCrash(1, 0.5),))
        injector = FaultInjector.from_config(config)
        assert injector is not None
        assert injector.dead_sites(1.0) == {1}

    def test_random_schedule_is_deterministic(self):
        a = random_schedule(seed=7, sites=4, horizon_seconds=2.0, crashes=2)
        b = random_schedule(seed=7, sites=4, horizon_seconds=2.0, crashes=2)
        assert a == b

    def test_random_schedule_keeps_sites_alive(self):
        schedule = random_schedule(
            seed=3, sites=4, horizon_seconds=1.0, crashes=10, keep_alive=2
        )
        crashed = {s.site for s in schedule if isinstance(s, SiteCrash)}
        assert len(crashed) <= 2
