"""Unit tests for the partitioned in-memory store."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.errors import StorageError
from repro.storage.store import DataStore
from repro.storage.table import PartitionIndex, TableData, affinity_partition

COLS = [
    Column("id", ColumnType.INTEGER),
    Column("grp", ColumnType.INTEGER),
    Column("val", ColumnType.DOUBLE),
]


def make_rows(n):
    return [(i, i % 7, float(i) / 2) for i in range(n)]


class TestPartitioning:
    def test_every_row_lands_in_exactly_one_partition(self):
        schema = TableSchema("t", COLS, ["id"])
        data = TableData(schema, make_rows(100), partition_count=8, site_count=4)
        total = sum(len(p) for p in data.partitions)
        assert total == 100
        assert data.partition_count == 8

    def test_partition_assignment_follows_affinity_hash(self):
        schema = TableSchema("t", COLS, ["id"])
        data = TableData(schema, make_rows(50), partition_count=8, site_count=4)
        for part_id, partition in enumerate(data.partitions):
            for row in partition:
                assert affinity_partition(row[0], 8) == part_id

    def test_partitions_assigned_round_robin_to_sites(self):
        schema = TableSchema("t", COLS, ["id"])
        data = TableData(schema, make_rows(10), partition_count=8, site_count=4)
        assert data.partition_sites == [((p % 4),) for p in range(8)]
        assert data.partitions_at_site(1) == [1, 5]

    def test_partition_site_count(self):
        schema = TableSchema("t", COLS, ["id"])
        data = TableData(schema, make_rows(10), partition_count=8, site_count=4)
        assert data.partition_site_count() == 4

    def test_affinity_on_non_pk_column(self):
        schema = TableSchema("t", COLS, ["id"], affinity_key="grp")
        data = TableData(schema, make_rows(70), partition_count=4, site_count=2)
        for part_id, partition in enumerate(data.partitions):
            for row in partition:
                assert affinity_partition(row[1], 4) == part_id


class TestReplication:
    def test_replicated_table_has_one_partition_everywhere(self):
        schema = TableSchema("t", COLS, ["id"], replicated=True)
        data = TableData(schema, make_rows(10), partition_count=8, site_count=4)
        assert data.partition_count == 1
        for site in range(4):
            assert data.partitions_at_site(site) == [0]

    def test_replicated_partition_site_count_is_one(self):
        """Alg. 2's convention: a replicated relation has one partition."""
        schema = TableSchema("t", COLS, ["id"], replicated=True)
        data = TableData(schema, make_rows(10), partition_count=8, site_count=4)
        assert data.partition_site_count() == 1


class TestValidation:
    def test_row_width_mismatch_rejected(self):
        schema = TableSchema("t", COLS, ["id"])
        with pytest.raises(StorageError):
            TableData(schema, [(1, 2)], partition_count=4, site_count=2)

    def test_bad_partition_count_rejected(self):
        schema = TableSchema("t", COLS, ["id"])
        with pytest.raises(StorageError):
            TableData(schema, [], partition_count=0, site_count=2)


class TestIndexes:
    def test_index_scan_is_sorted(self):
        schema = TableSchema("t", COLS, ["id"])
        data = TableData(schema, make_rows(60), partition_count=4, site_count=2)
        data.add_index("by_val", ["val"])
        for partition_index in data.index("by_val"):
            values = [r[2] for r in partition_index.scan()]
            assert values == sorted(values)

    def test_range_scan_bounds(self):
        index = PartitionIndex([0], [(i,) for i in range(20)])
        assert [r[0] for r in index.range_scan(5, 8)] == [5, 6, 7, 8]
        assert [r[0] for r in index.range_scan(5, 8, low_inclusive=False)] == [6, 7, 8]
        assert [r[0] for r in index.range_scan(5, 8, high_inclusive=False)] == [5, 6, 7]

    def test_range_scan_open_ends(self):
        index = PartitionIndex([0], [(i,) for i in range(10)])
        assert len(index.range_scan(None, 3)) == 4
        assert len(index.range_scan(7, None)) == 3
        assert len(index.range_scan(None, None)) == 10

    def test_range_scan_with_duplicates(self):
        index = PartitionIndex([0], [(1,), (2,), (2,), (3,)])
        assert len(index.range_scan(2, 2)) == 2

    def test_missing_index_raises(self):
        schema = TableSchema("t", COLS, ["id"])
        data = TableData(schema, [], partition_count=2, site_count=2)
        with pytest.raises(StorageError):
            data.index("ghost")


class TestDataStore:
    def test_create_and_query(self):
        store = DataStore(site_count=4, partitions_per_table=8)
        schema = TableSchema("t", COLS, ["id"])
        store.create_table(schema, make_rows(30))
        assert store.has_table("t")
        assert store.row_count("t") == 30
        assert store.total_rows() == 30
        assert store.table_names() == ["t"]

    def test_stats_computed_on_load(self):
        store = DataStore(site_count=2)
        store.create_table(TableSchema("t", COLS, ["id"]), make_rows(30))
        stats = store.table("t").stats
        assert stats.row_count == 30
        assert stats.distinct_count("grp") == 7

    def test_find_index_on(self):
        store = DataStore(site_count=2)
        store.create_table(TableSchema("t", COLS, ["id"]), make_rows(10))
        store.create_index("t", "t_grp", ["grp", "id"])
        assert store.find_index_on("t", "grp") == "t_grp"
        assert store.find_index_on("t", "val") is None

    def test_unknown_table_raises(self):
        with pytest.raises(StorageError):
            DataStore(site_count=2).table("ghost")

    def test_bad_site_count_rejected(self):
        with pytest.raises(StorageError):
            DataStore(site_count=0)
