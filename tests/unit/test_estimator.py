"""Unit tests for cardinality estimation (Section 4.1 / Eq. 3)."""

import pytest

from repro.rel.expr import BinaryOp, ColRef, InList, LikeExpr, Literal, UnaryOp
from repro.rel.logical import (
    AggCall,
    AggFunc,
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalSort,
    LogicalTableScan,
)
from repro.stats.estimator import (
    Estimator,
    LEGACY_SMALL_INPUT,
    legacy_join_size,
    swami_schiefer_join_size,
)

from helpers import make_company_store


@pytest.fixture(scope="module")
def store():
    return make_company_store()


@pytest.fixture
def est(store):
    return Estimator(store, fixed_join_estimation=True)


@pytest.fixture
def legacy_est(store):
    return Estimator(store, fixed_join_estimation=False)


def scan(store, table):
    schema = store.table(table).schema
    return LogicalTableScan(table, table, schema.column_names)


class TestJoinSizeFormulas:
    def test_eq3_formula(self):
        # |A| * |B| / max(dA, dB)
        assert swami_schiefer_join_size(1000, 500, 100, 250) == pytest.approx(
            1000 * 500 / 250
        )

    def test_eq3_never_below_one(self):
        assert swami_schiefer_join_size(1, 1, 1000, 1000) == 1.0

    def test_eq3_handles_missing_distinct(self):
        assert swami_schiefer_join_size(100, 100, None, 50) == pytest.approx(200)

    def test_legacy_matches_eq3_for_healthy_inputs(self):
        healthy = legacy_join_size(1000, 500, 100, 250)
        assert healthy == pytest.approx(1000 * 500 / 250)

    def test_legacy_small_left_collapses_to_one(self):
        assert legacy_join_size(LEGACY_SMALL_INPUT, 100000, 5, 1000) == 1.0

    def test_legacy_small_right_collapses_to_one(self):
        assert legacy_join_size(100000, 1.0, 1000, 1) == 1.0

    def test_legacy_cascades_through_chains(self):
        """An N x 1 estimate feeds the next join, which also collapses."""
        first = legacy_join_size(5, 100000, 5, 1000)
        second = legacy_join_size(first, 100000, 1, 1000)
        assert first == 1.0 and second == 1.0


class TestRowCounts:
    def test_scan_row_count(self, est, store):
        assert est.row_count(scan(store, "emp")) == 120

    def test_filter_reduces_rows(self, est, store):
        node = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(1), Literal(3))
        )
        estimate = est.row_count(node)
        assert 1 <= estimate < 120
        # dept_id has 8 distinct values: equality ~ 1/8.
        assert estimate == pytest.approx(120 / 8, rel=0.01)

    def test_sort_fetch_caps_rows(self, est, store):
        node = LogicalSort(scan(store, "emp"), ((0, True),), fetch=5)
        assert est.row_count(node) == 5

    def test_aggregate_group_estimate(self, est, store):
        node = LogicalAggregate(
            scan(store, "emp"), (1,), (AggCall(AggFunc.COUNT, None),)
        )
        assert est.row_count(node) == pytest.approx(8)

    def test_scalar_aggregate_is_one_row(self, est, store):
        node = LogicalAggregate(
            scan(store, "emp"), (), (AggCall(AggFunc.COUNT, None),)
        )
        assert est.row_count(node) == 1.0

    def test_equi_join_uses_distinct_counts(self, est, store):
        emp = scan(store, "emp")
        sales = scan(store, "sales")
        condition = BinaryOp("=", ColRef(0), ColRef(5 + 1))
        join = LogicalJoin(emp, sales, condition)
        # 120 emps x 500 sales / max(120 distinct, ~distinct emp ids in sales)
        estimate = est.row_count(join)
        assert 300 <= estimate <= 800

    def test_legacy_join_estimate_collapses_with_small_filter(
        self, legacy_est, store
    ):
        emp = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(0), Literal(7))
        )
        sales = scan(store, "sales")
        join = LogicalJoin(
            emp, sales, BinaryOp("=", ColRef(0), ColRef(5 + 1))
        )
        assert legacy_est.row_count(join) == 1.0

    def test_fixed_estimator_does_not_collapse(self, est, store):
        emp = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(0), Literal(7))
        )
        sales = scan(store, "sales")
        join = LogicalJoin(emp, sales, BinaryOp("=", ColRef(0), ColRef(6)))
        assert est.row_count(join) >= 1.0
        # ~500/120 matches expected for one employee's sales.
        assert est.row_count(join) == pytest.approx(500 / 120, rel=0.5)

    def test_semi_join_bounded_by_left(self, est, store):
        emp = scan(store, "emp")
        sales = scan(store, "sales")
        join = LogicalJoin(
            emp, sales, BinaryOp("=", ColRef(0), ColRef(6)), JoinType.SEMI
        )
        assert est.row_count(join) <= 120

    def test_cross_join_is_product(self, est, store):
        join = LogicalJoin(scan(store, "emp"), scan(store, "dept"), None)
        assert est.row_count(join) == pytest.approx(120 * 8)

    def test_row_counts_are_cached(self, est, store):
        node = scan(store, "emp")
        assert est.row_count(node) is est.row_count(node) or (
            est.row_count(node) == est.row_count(node)
        )


class TestSelectivity:
    def test_conjunction_multiplies(self, est, store):
        emp = scan(store, "emp")
        cond = BinaryOp(
            "AND",
            BinaryOp("=", ColRef(1), Literal(1)),
            BinaryOp("=", ColRef(0), Literal(1)),
        )
        sel = est.selectivity(cond, emp)
        assert sel == pytest.approx((1 / 8) * (1 / 120), rel=0.01)

    def test_disjunction_is_inclusion_exclusion(self, est, store):
        emp = scan(store, "emp")
        one = BinaryOp("=", ColRef(1), Literal(1))
        cond = BinaryOp("OR", one, one)
        sel = est.selectivity(cond, emp)
        s = 1 / 8
        assert sel == pytest.approx(s + s - s * s, rel=0.01)

    def test_negation(self, est, store):
        emp = scan(store, "emp")
        cond = UnaryOp("NOT", BinaryOp("=", ColRef(1), Literal(1)))
        assert est.selectivity(cond, emp) == pytest.approx(1 - 1 / 8, rel=0.01)

    def test_in_list_uses_distinct(self, est, store):
        emp = scan(store, "emp")
        cond = InList(ColRef(1), [1, 2, 3])
        assert est.selectivity(cond, emp) == pytest.approx(3 / 8, rel=0.01)

    def test_like_default(self, est, store):
        emp = scan(store, "emp")
        sel = est.selectivity(LikeExpr(ColRef(2), "emp%"), emp)
        assert 0 < sel < 1

    def test_range_uses_min_max(self, est, store):
        emp = scan(store, "emp")
        # salary spans ~[30k, 200k]; < 200k should be nearly everything.
        high = est.selectivity(BinaryOp("<", ColRef(3), Literal(199_000.0)), emp)
        low = est.selectivity(BinaryOp("<", ColRef(3), Literal(35_000.0)), emp)
        assert high > 0.9
        assert low < 0.2

    def test_date_range_coercion(self, est, store):
        emp = scan(store, "emp")
        sel = est.selectivity(
            BinaryOp(">=", ColRef(4), Literal("2020-01-01")), emp
        )
        assert 0 < sel < 0.5

    def test_true_literal_is_one(self, est, store):
        assert est.selectivity(Literal(True), scan(store, "emp")) == 1.0

    def test_q19_style_or_of_ands_stays_within_input(self, est, store):
        """Regression: an OR of AND-branches (the TPC-H Q19 shape) must
        estimate selectivity in [0, 1] and never more output rows than
        input rows, no matter how many branches pile up."""
        emp = scan(store, "emp")

        def branch(dept, low, high):
            return BinaryOp(
                "AND",
                BinaryOp("=", ColRef(1), Literal(dept)),
                BinaryOp(
                    "AND",
                    BinaryOp(">=", ColRef(3), Literal(low)),
                    BinaryOp("<=", ColRef(3), Literal(high)),
                ),
            )

        cond = branch(1, 30_000.0, 200_000.0)
        for dept in range(2, 9):
            cond = BinaryOp("OR", cond, branch(dept, 30_000.0, 200_000.0))
        sel = est.selectivity(cond, emp)
        assert 0.0 <= sel <= 1.0
        filtered = LogicalFilter(emp, cond)
        assert est.row_count(filtered) <= est.row_count(emp)

    def test_wide_or_chain_clamped(self, est, store):
        """Eight disjuncts each at ~1/8 must converge below 1.0, not sum
        past it."""
        emp = scan(store, "emp")
        disjuncts = [BinaryOp("=", ColRef(1), Literal(d)) for d in range(1, 9)]
        cond = disjuncts[0]
        for d in disjuncts[1:]:
            cond = BinaryOp("OR", cond, d)
        assert 0.0 <= est.selectivity(cond, emp) <= 1.0

    def test_every_conjunct_shape_clamped(self, est, store):
        """The _conjunct_selectivity wrapper guarantees [0, 1] for every
        predicate shape, including negations and IN lists wider than the
        column's distinct count."""
        emp = scan(store, "emp")
        shapes = [
            InList(ColRef(1), list(range(1000))),  # 1000 values, 8 distinct
            UnaryOp("NOT", InList(ColRef(1), list(range(1000)))),
            UnaryOp("NOT", Literal(True)),
            LikeExpr(ColRef(2), "%", negated=True),
        ]
        for cond in shapes:
            assert 0.0 <= est.selectivity(cond, emp) <= 1.0


class TestDistinctPropagation:
    def test_scan_distinct(self, est, store):
        assert est.distinct_count(scan(store, "emp"), 1) == 8

    def test_project_passthrough(self, est, store):
        node = LogicalProject(scan(store, "emp"), [ColRef(1)], ["d"])
        assert est.distinct_count(node, 0) == 8

    def test_filter_caps_distinct_at_row_count(self, est, store):
        node = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(0), Literal(1))
        )
        assert est.distinct_count(node, 1) <= est.row_count(node)

    def test_aggregate_key_distinct(self, est, store):
        node = LogicalAggregate(
            scan(store, "emp"), (1,), (AggCall(AggFunc.COUNT, None),)
        )
        assert est.distinct_count(node, 0) == pytest.approx(8)

    def test_aggregate_value_distinct_unknown(self, est, store):
        node = LogicalAggregate(
            scan(store, "emp"), (1,), (AggCall(AggFunc.COUNT, None),)
        )
        assert est.distinct_count(node, 1) is None
