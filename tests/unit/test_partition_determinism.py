"""Partition determinism: affinity placement must not depend on the
interpreter's per-process hash salt.

The bug this pins down: ``affinity_partition`` used the builtin ``hash``,
which for strings is salted by ``PYTHONHASHSEED`` — so two interpreter
processes placed the same string affinity key on *different* partitions,
breaking seeded-trace replay and cross-process artefact comparison.  The
fix routes strings through the sketch engine's keyed blake2b hash while
keeping the identity hash for ints, so dense surrogate-key layouts are
bit-for-bit unchanged.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.storage.table import AFFINITY_SEED, _stable_hash, affinity_partition

pytestmark = pytest.mark.federation

#: Literal placements pinned so any future change to the hash recipe is a
#: visible, deliberate diff — these were computed once and must never move.
PINNED_KEYS = ["alpha", "beta", "gamma", ("x", 1), (2, "y")]
PINNED_PARTITIONS = [2, 6, 4, 3, 6]

#: The placement program run in fresh subprocesses: prints the partition of
#: every pinned key plus a spread of int and mixed keys at two partition
#: counts.  Any salt dependence shows up as differing stdout.
_PLACEMENT_PROGRAM = """
import json, sys
sys.path.insert(0, {src!r})
from repro.storage.table import affinity_partition

keys = [
    "alpha", "beta", "gamma", ("x", 1), (2, "y"),
    "", "a", "z" * 40, "emp-17", "region-EMEA",
    0, 1, 17, -5, 10**9, True, 3.0,
    ("dept", 4), (1, 2, 3), ("a", "b"),
]
out = [[affinity_partition(k, p) for k in keys] for p in (8, 64)]
print(json.dumps(out))
"""


class TestPinnedPlacements:
    def test_string_and_tuple_keys_land_on_pinned_partitions(self):
        got = [affinity_partition(k, 8) for k in PINNED_KEYS]
        assert got == PINNED_PARTITIONS

    def test_int_keys_keep_identity_layout(self):
        """Ints keep the builtin identity hash, so the dense TPC-H
        surrogate keys spread exactly as before the fix."""
        for k in (0, 1, 7, 8, 17, 123456, -3):
            assert affinity_partition(k, 8) == hash(k) % 8

    def test_bool_and_float_keep_builtin_hash(self):
        assert affinity_partition(True, 8) == hash(True) % 8
        assert affinity_partition(3.0, 8) == hash(3.0) % 8

    def test_all_int_tuple_keeps_builtin_hash(self):
        key = (1, 2, 3)
        assert _stable_hash(key) == hash(key)

    def test_string_hash_differs_from_builtin_salted_hash(self):
        # Not a tautology under PYTHONHASHSEED=0, but documents intent:
        # the stable hash is keyed by AFFINITY_SEED, not the process salt.
        assert AFFINITY_SEED == 0xAF1717
        assert _stable_hash("alpha") == _stable_hash("alpha")

    def test_partition_in_range(self):
        for k in PINNED_KEYS + [0, -1, ("m", "n")]:
            for p in (1, 2, 8, 64):
                assert 0 <= affinity_partition(k, p) < p


class TestCrossProcessDeterminism:
    """The acceptance criterion: bit-identical placements across two
    interpreter processes started with different PYTHONHASHSEED values."""

    def _run(self, hashseed: str) -> str:
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        program = _PLACEMENT_PROGRAM.format(src=os.path.abspath(src))
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout.strip()

    def test_placements_identical_across_hash_seeds(self):
        first = self._run("1")
        second = self._run("2")
        assert first == second
        # And they agree with this process (whatever its salt is).
        placements = json.loads(first)
        assert placements[0][:5] == PINNED_PARTITIONS
