"""Unit tests for the join-order enumerator (the permutation rules)."""

import pytest

from repro.common.config import SystemConfig
from repro.cost.model import CostModel
from repro.planner.budget import PlanningBudget
from repro.planner.physical import PhysicalPlanner
from repro.planner.volcano import JoinOrderEnumerator, MAX_JOIN_ORDERS
from repro.rel.expr import BinaryOp, ColRef, compile_expr, make_conjunction
from repro.rel.logical import JoinType, LogicalJoin, LogicalTableScan
from repro.stats.estimator import Estimator

from helpers import make_company_store, naive_execute, normalise


@pytest.fixture(scope="module")
def store():
    return make_company_store()


@pytest.fixture
def enumerator(store):
    config = SystemConfig.ic_plus()
    estimator = Estimator(store, True)
    physical = PhysicalPlanner(
        store, config, estimator, CostModel(config), PlanningBudget(10**7)
    )
    return JoinOrderEnumerator(physical, estimator, PlanningBudget(10**7))


def scan(store, table, alias=None):
    schema = store.table(table).schema
    return LogicalTableScan(table, alias or table, schema.column_names)


def chain(store):
    """dept x emp x sales joined on the natural keys."""
    dept = scan(store, "dept")     # 3 cols
    emp = scan(store, "emp")       # 5 cols
    sales = scan(store, "sales")   # 4 cols
    join1 = LogicalJoin(dept, emp, BinaryOp("=", ColRef(0), ColRef(3 + 1)))
    join2 = LogicalJoin(
        join1, sales, BinaryOp("=", ColRef(3 + 0), ColRef(8 + 1))
    )
    return join2


class TestFlatten:
    def test_flatten_collects_inputs_and_conjuncts(self, enumerator, store):
        inputs, conjuncts = enumerator._flatten(chain(store))
        assert len(inputs) == 3
        assert len(conjuncts) == 2

    def test_semi_join_is_an_atomic_input(self, enumerator, store):
        semi = LogicalJoin(
            scan(store, "emp"), scan(store, "sales"),
            BinaryOp("=", ColRef(0), ColRef(5 + 1)), JoinType.SEMI,
        )
        top = LogicalJoin(
            semi, scan(store, "dept"),
            BinaryOp("=", ColRef(1), ColRef(5 + 0)),
        )
        inputs, conjuncts = enumerator._flatten(top)
        assert len(inputs) == 2
        assert inputs[0] is semi


class TestConnectedOrders:
    def test_path_graph_orders(self, enumerator):
        # 0-1-2 path: every order must keep connectivity.
        orders = enumerator._connected_orders(3, {(0, 1), (1, 2)})
        assert (0, 1, 2) in orders
        assert (1, 0, 2) in orders
        assert (2, 1, 0) in orders
        # 0 then 2 would need a cross join while 1 is connected: forbidden.
        assert (0, 2, 1) not in orders

    def test_disconnected_inputs_still_enumerated(self, enumerator):
        orders = enumerator._connected_orders(2, set())
        assert len(orders) == 2  # cross joins happen when unavoidable

    def test_enumeration_is_capped(self, enumerator):
        count = 8
        edges = {(i, j) for i in range(count) for j in range(i + 1, count)}
        orders = enumerator._connected_orders(count, edges)
        assert len(orders) <= MAX_JOIN_ORDERS


class TestReorderCorrectness:
    def test_reordered_tree_produces_identical_rows(self, enumerator, store):
        original = chain(store)
        reordered = enumerator.reorder(original)
        expected = normalise(naive_execute(original, store))
        got = normalise(naive_execute(reordered, store))
        assert got == expected

    def test_output_columns_keep_original_order(self, enumerator, store):
        original = chain(store)
        reordered = enumerator.reorder(original)
        assert tuple(reordered.fields) == tuple(original.fields) or [
            f.split(".")[-1] for f in reordered.fields
        ] == [f.split(".")[-1] for f in original.fields]

    def test_budget_is_charged_per_alternative(self, store):
        config = SystemConfig.ic_plus()
        estimator = Estimator(store, True)
        physical = PhysicalPlanner(
            store, config, estimator, CostModel(config), PlanningBudget(10**7)
        )
        budget = PlanningBudget(10**7)
        enumerator = JoinOrderEnumerator(physical, estimator, budget)
        enumerator.reorder(chain(store))
        assert budget.spent >= 2  # at least a couple of orders explored
