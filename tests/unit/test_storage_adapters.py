"""Storage-adapter units: registry, capabilities, costs, column files,
remote gateway placement — and the drop/recreate staleness regression.

The staleness sweep (the PR's bugfix audit): dropping a table and
recreating the same name on a *different* adapter must leave no stale
rows, scan batches, sketch estimates or cached plans behind — every
cache keyed off the old table's identity is invalidated on DDL.
"""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.config import PRESETS
from repro.common.constants import NETWORK_UNITS_PER_MESSAGE, RPTC
from repro.common.errors import StorageError
from repro.core.cluster import IgniteCalciteCluster
from repro.storage.adapters import (
    AdapterCosts,
    ColumnFileAdapter,
    NativeAdapter,
    PushedScan,
    RemoteCatalogAdapter,
    adapter_names,
    compile_pushdown,
    create_adapter,
    scan_charge,
)
from repro.storage.adapters.columnfile import ROW_GROUP_ROWS
from repro.storage.adapters.remote import GATEWAY_SITE
from repro.storage.store import DataStore

pytestmark = pytest.mark.federation


def _schema(name="t", adapter="native"):
    return TableSchema(
        name,
        [Column("k", ColumnType.INTEGER), Column("v", ColumnType.VARCHAR)],
        ["k"],
        adapter=adapter,
    )


class TestRegistry:
    def test_builtin_adapters_registered(self):
        assert {"native", "columnfile", "remote"} <= set(adapter_names())

    def test_create_adapter_is_case_insensitive(self):
        assert create_adapter("COLUMNFILE").name == "columnfile"

    def test_unknown_adapter_raises_storage_error(self):
        with pytest.raises(StorageError, match="unknown storage adapter"):
            create_adapter("parquet-on-mars")

    def test_each_table_gets_its_own_instance(self):
        assert create_adapter("remote") is not create_adapter("remote")


class TestCapabilities:
    def test_capability_matrix(self):
        matrix = {
            "native": (False, False, False),
            "columnfile": (True, True, False),
            "remote": (True, True, True),
        }
        for name, (f, p, l) in matrix.items():
            adapter = create_adapter(name)
            assert adapter.supports_filter_pushdown is f
            assert adapter.supports_project_pushdown is p
            assert adapter.supports_limit_pushdown is l

    def test_native_costs_collapse_to_historical_charge(self):
        assert scan_charge(NativeAdapter.costs, 100, 40) == 100 * RPTC

    def test_columnfile_charge_decodes_cheaper_but_pays_io(self):
        charge = scan_charge(ColumnFileAdapter.costs, 100, 40)
        assert charge == 100 * RPTC * 0.5 + 100 * 0.4

    def test_remote_charge_includes_round_trip_and_shipping(self):
        charge = scan_charge(RemoteCatalogAdapter.costs, 100, 40, requests=2)
        assert charge == (
            100 * RPTC + 40 * 2.0 + 2 * NETWORK_UNITS_PER_MESSAGE
        )

    def test_pushdown_makes_remote_cheaper(self):
        full = scan_charge(RemoteCatalogAdapter.costs, 100, 100)
        pushed = scan_charge(RemoteCatalogAdapter.costs, 100, 5)
        assert pushed < full


class TestColumnFile:
    def _store(self, rows, partitions=2):
        store = DataStore(site_count=2, partitions_per_table=partitions)
        store.create_table(_schema("cf", adapter="columnfile"), rows)
        return store

    def test_footer_roundtrip(self):
        rows = [(i, f"v{i}") for i in range(600)]
        store = self._store(rows, partitions=1)
        data = store.table("cf")
        path = data.adapter._files["cf"][0]
        footer = ColumnFileAdapter.read_footer(path)
        assert footer["rows"] == 600
        assert footer["width"] == 2
        assert len(footer["groups"]) == -(-600 // ROW_GROUP_ROWS)
        assert sum(g["rows"] for g in footer["groups"]) == 600
        zones = footer["groups"][0]["zones"]
        assert zones[0] == [0, ROW_GROUP_ROWS - 1]  # JSON tuples -> lists

    def test_unpushed_scan_returns_partition_verbatim(self):
        rows = [(i, f"v{i}") for i in range(20)]
        store = self._store(rows)
        data = store.table("cf")
        for part in range(len(data.partitions)):
            scanned, got = data.adapter.scan_partition(data, part, None)
            assert scanned == len(data.partitions[part])
            assert got == list(data.partitions[part])

    def test_zone_maps_prune_row_groups(self):
        """A clustered-by-construction layout: partition 0 holds keys in
        ascending order, so a tight range proves most groups irrelevant."""
        rows = [(i, f"v{i}") for i in range(4 * ROW_GROUP_ROWS)]
        store = self._store(rows, partitions=1)
        data = store.table("cf")
        adapter = data.adapter
        pushed = PushedScan(
            lambda row: 10 <= row[0] <= 20,
            bounds=((0, 10, True, 20, True),),
            project=None,
            fetch=None,
        )
        scanned, got = adapter.scan_partition(data, 0, pushed)
        assert [r[0] for r in got] == list(range(10, 21))
        assert adapter.groups_pruned == 3
        assert adapter.groups_read == 1
        assert scanned == ROW_GROUP_ROWS  # only one group decoded

    def test_drop_removes_column_files(self):
        import os

        store = self._store([(1, "a")], partitions=1)
        data = store.table("cf")
        path = data.adapter._files["cf"][0]
        assert os.path.exists(path)
        store.drop_table("cf")
        assert not os.path.exists(path)


class TestRemote:
    def test_all_partitions_placed_at_gateway(self):
        adapter = create_adapter("remote")
        assert adapter.partition_sites(8, 4) == [(GATEWAY_SITE,)] * 8

    def test_scan_counts_requests_and_shipped_rows(self):
        store = DataStore(site_count=2, partitions_per_table=2)
        rows = [(i, f"v{i}") for i in range(10)]
        store.create_table(_schema("r", adapter="remote"), rows)
        data = store.table("r")
        adapter = data.adapter
        pushed = PushedScan(lambda row: row[0] % 2 == 0, (), None, None)
        total_shipped = 0
        for part in range(2):
            scanned, got = adapter.scan_partition(data, part, pushed)
            assert scanned == len(data.partitions[part])
            total_shipped += len(got)
        assert adapter.requests == 2
        assert adapter.rows_shipped == total_shipped
        assert 0 < total_shipped < 10


class TestDdlRouting:
    @pytest.fixture()
    def cluster(self):
        return IgniteCalciteCluster(PRESETS["IC+"](2))

    def test_create_table_using_routes_adapter(self, cluster):
        cluster.sql("create table logs (id int, msg varchar) using columnfile")
        data = cluster.store.table("logs")
        assert data.schema.adapter == "columnfile"
        assert data.adapter.name == "columnfile"
        assert cluster.sql("select * from logs").rows == []

    def test_create_table_defaults_to_native(self, cluster):
        cluster.sql("create table plain (id int)")
        assert cluster.store.table("plain").adapter.name == "native"

    def test_unknown_adapter_is_an_error_outcome(self, cluster):
        outcome = cluster.try_sql("create table t (id int) using quantum")
        assert not outcome.succeeded
        assert "unknown storage adapter" in str(outcome.error)
        assert not cluster.store.has_table("t")

    def test_unknown_column_type_is_unsupported(self, cluster):
        outcome = cluster.try_sql("create table t (id blob)")
        assert not outcome.succeeded
        assert "unknown column type" in str(outcome.error)


class TestDropRecreateStaleness:
    """The satellite bugfix sweep: same table name, different adapter."""

    ROWS_V1 = [(i, f"old{i}") for i in range(12)]
    ROWS_V2 = [(i, f"new{i}") for i in range(7)]

    def _create(self, cluster, adapter, rows):
        cluster.create_table(_schema("reused", adapter=adapter), rows)

    @pytest.mark.parametrize("backend", ["row", "columnar"])
    @pytest.mark.parametrize(
        "first,second",
        [("native", "columnfile"), ("columnfile", "remote"),
         ("remote", "native")],
    )
    def test_no_stale_rows_after_adapter_swap(self, backend, first, second):
        config = PRESETS["IC+M"](2).with_(execution_backend=backend)
        cluster = IgniteCalciteCluster(config)
        self._create(cluster, first, self.ROWS_V1)
        sql = "select k, v from reused order by k"
        # Warm every identity-keyed cache: plan cache, columnar
        # scan-batch cache (lives on the TableData), sketch estimates.
        first_rows = cluster.sql(sql).rows
        assert len(first_rows) == len(self.ROWS_V1)
        cluster.drop_table("reused")
        self._create(cluster, second, self.ROWS_V2)
        got = cluster.sql(sql).rows
        assert got == sorted(self.ROWS_V2)
        assert cluster.store.table("reused").adapter.name == second

    def test_recreate_flips_explain_pushdown(self):
        cluster = IgniteCalciteCluster(PRESETS["IC+"](2))
        self._create(cluster, "native", self.ROWS_V1)
        sql = "select v from reused where k > 3"
        assert "pushed[" not in cluster.explain(sql)
        cluster.drop_table("reused")
        self._create(cluster, "remote", self.ROWS_V2)
        # A stale cached plan would keep the native (no-pushdown) shape.
        assert "pushed[" in cluster.explain(sql)

    def test_drop_detaches_adapter_state(self):
        cluster = IgniteCalciteCluster(PRESETS["IC+"](2))
        self._create(cluster, "columnfile", self.ROWS_V1)
        adapter = cluster.store.table("reused").adapter
        cluster.drop_table("reused")
        assert "reused" not in adapter._files
        assert not cluster.store.has_table("reused")

    def test_drop_unknown_table_raises(self):
        cluster = IgniteCalciteCluster(PRESETS["IC+"](2))
        with pytest.raises(StorageError):
            cluster.drop_table("ghost")


class TestPushedScanCompilation:
    def test_compile_pushdown_none_when_nothing_pushed(self):
        class Bare:
            pushed_filter = None
            pushed_project = None
            pushed_fetch = None

        assert compile_pushdown(Bare()) is None

    def test_apply_filters_projects_and_caps_in_order(self):
        pushed = PushedScan(
            lambda row: row[0] > 1, (), project=(1,), fetch=2
        )
        rows = [(0, "a"), (2, "b"), (3, "c"), (4, "d")]
        assert pushed.apply(rows) == [("b",), ("c",)]

    def test_adapter_costs_are_frozen(self):
        with pytest.raises(Exception):
            AdapterCosts().scan_cpu_factor = 2.0
