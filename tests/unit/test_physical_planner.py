"""Unit tests for the trait-driven physical planner."""

import pytest

from repro.common.config import SystemConfig
from repro.cost.model import CostModel
from repro.exec.physical import (
    AggPhase,
    PhysExchange,
    PhysHashAggregate,
    PhysHashJoin,
    PhysIndexScan,
    PhysMergeJoin,
    PhysNestedLoopJoin,
    PhysNode,
    PhysSort,
    PhysSortAggregate,
    PhysTableScan,
    walk_physical,
)
from repro.planner.budget import PlanningBudget
from repro.planner.physical import PhysicalPlanner, Requirement
from repro.rel.expr import BinaryOp, ColRef, Literal, make_conjunction
from repro.rel.logical import (
    AggCall,
    AggFunc,
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalSort,
    LogicalTableScan,
)
from repro.stats.estimator import Estimator

from helpers import make_company_store


@pytest.fixture(scope="module")
def store():
    return make_company_store()


def planner_for(store, config):
    estimator = Estimator(store, config.fixed_join_estimation)
    return PhysicalPlanner(
        store, config, estimator, CostModel(config), PlanningBudget(10**7)
    )


def scan(store, table):
    schema = store.table(table).schema
    return LogicalTableScan(table, table, schema.column_names)


def ops(plan, cls):
    return [n for n in walk_physical(plan) if isinstance(n, cls)]


class TestScans:
    def test_partitioned_scan_native_distribution(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(scan(store, "emp"), Requirement.any())
        assert isinstance(plan, PhysTableScan)
        assert plan.distribution.is_hash
        assert plan.distribution.keys == (0,)

    def test_replicated_scan_is_broadcast(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(scan(store, "dept"), Requirement.any())
        assert plan.distribution.is_broadcast

    def test_single_requirement_inserts_exchange(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(scan(store, "emp"), Requirement.single())
        assert isinstance(plan, PhysExchange)
        assert plan.distribution.is_single

    def test_replicated_scan_satisfies_single_without_exchange(self, store):
        """Table 1: broadcast satisfies single — no shipping needed."""
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(scan(store, "dept"), Requirement.single())
        assert not ops(plan, PhysExchange)

    def test_collation_requirement_uses_index(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        from repro.rel.traits import Collation

        req = Requirement(collation=Collation(((0, True),)))
        plan = planner.implement(scan(store, "emp"), req)
        assert ops(plan, PhysIndexScan)
        assert not ops(plan, PhysSort)

    def test_collation_without_index_sorts(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        from repro.rel.traits import Collation

        req = Requirement(collation=Collation(((3, True),)))
        plan = planner.implement(scan(store, "emp"), req)
        assert ops(plan, PhysSort)


class TestJoins:
    def _join(self, store):
        emp = scan(store, "emp")
        sales = scan(store, "sales")
        condition = BinaryOp("=", ColRef(0), ColRef(5 + 1))
        return LogicalJoin(emp, sales, condition)

    def test_baseline_has_no_hash_join(self, store):
        planner = planner_for(store, SystemConfig.ic())
        plan = planner.implement(self._join(store), Requirement.single())
        assert not ops(plan, PhysHashJoin)
        assert ops(plan, PhysMergeJoin) or ops(plan, PhysNestedLoopJoin)

    def test_improved_uses_hash_join(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(self._join(store), Requirement.single())
        assert ops(plan, PhysHashJoin)

    def test_non_equi_condition_forces_nested_loop(self, store):
        emp = scan(store, "emp")
        sales = scan(store, "sales")
        condition = BinaryOp("<", ColRef(3), ColRef(5 + 2))
        join = LogicalJoin(emp, sales, condition)
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(join, Requirement.single())
        assert ops(plan, PhysNestedLoopJoin)
        assert not ops(plan, PhysHashJoin)

    def test_broadcast_mapping_keeps_large_side_local(self, store):
        """Section 5.1.1: the small relation ships, the large stays put."""
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(self._join(store), Requirement.any())
        exchanges = ops(plan, PhysExchange)
        # Whatever ships must be far smaller than the sales table.
        sales_rows = store.row_count("sales")
        assert all(e.rows_est < sales_rows for e in exchanges)

    def test_semi_join_planned(self, store):
        emp = scan(store, "emp")
        sales = scan(store, "sales")
        join = LogicalJoin(
            emp, sales, BinaryOp("=", ColRef(0), ColRef(6)), JoinType.SEMI
        )
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(join, Requirement.single())
        join_ops = ops(plan, PhysHashJoin) + ops(plan, PhysMergeJoin) + ops(
            plan, PhysNestedLoopJoin
        )
        assert join_ops
        assert all(j.join_type is JoinType.SEMI for j in join_ops)


class TestAggregates:
    def _agg(self, store, distinct=False):
        emp = scan(store, "emp")
        call = AggCall(AggFunc.SUM, ColRef(3), distinct=distinct)
        return LogicalAggregate(emp, (1,), (call,))

    def test_splittable_aggregate_goes_map_reduce(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(self._agg(store), Requirement.single())
        phases = {a.phase for a in ops(plan, PhysHashAggregate)}
        assert phases == {AggPhase.MAP, AggPhase.REDUCE}

    def test_distinct_aggregate_forces_single_phase(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(
            self._agg(store, distinct=True), Requirement.single()
        )
        aggs = ops(plan, PhysHashAggregate) + ops(plan, PhysSortAggregate)
        assert {a.phase for a in aggs} == {AggPhase.SINGLE}

    def test_scalar_aggregate(self, store):
        emp = scan(store, "emp")
        agg = LogicalAggregate(emp, (), (AggCall(AggFunc.COUNT, None),))
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(agg, Requirement.single())
        assert plan.distribution.is_single


class TestSorts:
    def test_distributed_sort_uses_merging_exchange(self, store):
        node = LogicalSort(scan(store, "emp"), ((3, True),))
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(node, Requirement.single())
        merging = [
            e for e in ops(plan, PhysExchange) if e.collation.is_sorted
        ]
        local_sorts = ops(plan, PhysSort)
        # Either a partially distributed sort (sort locally, merge) or a
        # gather-then-sort plan; both must end up single and sorted.
        assert plan.distribution.is_single or merging
        assert local_sorts

    def test_fetch_limits_rows(self, store):
        node = LogicalSort(scan(store, "emp"), ((3, False),), fetch=5)
        planner = planner_for(store, SystemConfig.ic_plus())
        plan = planner.implement(node, Requirement.single())
        assert plan.rows_est <= 5


class TestMemoAndBudget:
    def test_memoisation_reuses_plans(self, store):
        planner = planner_for(store, SystemConfig.ic_plus())
        node = scan(store, "emp")
        first = planner.implement(node, Requirement.single())
        second = planner.implement(node, Requirement.single())
        assert first is second

    def test_budget_charges(self, store):
        config = SystemConfig.ic_plus()
        estimator = Estimator(store, True)
        budget = PlanningBudget(10**7)
        planner = PhysicalPlanner(
            store, config, estimator, CostModel(config), budget
        )
        planner.implement(scan(store, "emp"), Requirement.single())
        assert budget.spent > 0

    def test_budget_exhaustion_raises(self, store):
        from repro.common.errors import PlanningTimeoutError

        config = SystemConfig.ic_plus()
        estimator = Estimator(store, True)
        planner = PhysicalPlanner(
            store, config, estimator, CostModel(config), PlanningBudget(1)
        )
        emp = scan(store, "emp")
        sales = scan(store, "sales")
        join = LogicalJoin(emp, sales, BinaryOp("=", ColRef(0), ColRef(6)))
        with pytest.raises(PlanningTimeoutError):
            planner.implement(join, Requirement.single())
