"""Unit tests for physical-node mechanics: copies, digests, costs, traits."""

import pytest

from repro.cost.model import Cost
from repro.exec.physical import (
    AggPhase,
    PhysExchange,
    PhysFilter,
    PhysHashAggregate,
    PhysHashJoin,
    PhysProject,
    PhysSort,
    PhysTableScan,
    PhysValues,
    walk_physical,
)
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import AggCall, AggFunc, JoinType
from repro.rel.traits import Collation, Distribution


def scan(dist=None):
    node = PhysTableScan(
        "t", "t", ["t.a", "t.b"], dist or Distribution.hash((0,)), 4
    )
    node.rows_est = 100.0
    node.self_cost = Cost(cpu=100.0)
    return node


class TestCopies:
    def test_copy_preserves_estimates_and_costs(self):
        original = scan()
        clone = original.copy([])
        assert clone.rows_est == original.rows_est
        assert clone.self_cost.value == original.self_cost.value
        assert clone.digest() == original.digest()

    def test_copy_rewires_inputs(self):
        filt = PhysFilter(scan(), BinaryOp("=", ColRef(0), Literal(1)))
        other = scan(Distribution.broadcast())
        clone = filt.copy([other])
        assert clone.input is other

    def test_total_cost_sums_subtree(self):
        inner = scan()
        filt = PhysFilter(inner, BinaryOp("=", ColRef(0), Literal(1)))
        filt.self_cost = Cost(cpu=50.0)
        assert filt.total_cost().value == pytest.approx(150.0)


class TestProjectTraitPropagation:
    def test_hash_keys_remap_through_projection(self):
        project = PhysProject(scan(), [ColRef(1), ColRef(0)], ["b", "a"])
        assert project.distribution.is_hash
        assert project.distribution.keys == (1,)

    def test_lost_hash_key_degrades_to_opaque_hash(self):
        project = PhysProject(scan(), [ColRef(1)], ["b"])
        # Key column 0 was projected away: the placement is still spread
        # over the sites but no longer expressible, so satisfaction fails.
        from repro.rel.traits import satisfies

        assert project.distribution.is_hash
        assert not satisfies(project.distribution, Distribution.hash((0,)))

    def test_collation_prefix_survives_projection(self):
        sorted_scan = PhysSort(scan(), ((0, True), (1, True)))
        project = PhysProject(sorted_scan, [ColRef(0)], ["a"])
        assert project.collation.keys == ((0, True),)

    def test_broadcast_passes_through(self):
        project = PhysProject(
            scan(Distribution.broadcast()), [ColRef(1)], ["b"]
        )
        assert project.distribution.is_broadcast


class TestDigests:
    def test_distinct_bounds_distinct_digests(self):
        a = PhysFilter(scan(), BinaryOp("=", ColRef(0), Literal(1)))
        b = PhysFilter(scan(), BinaryOp("=", ColRef(0), Literal(2)))
        assert a.digest() != b.digest()

    def test_join_digest_includes_algorithm_and_type(self):
        left, right = scan(), scan(Distribution.broadcast())
        hash_join = PhysHashJoin(
            left, right, [(0, 0)], None, JoinType.SEMI, Distribution.single()
        )
        assert "semi" in hash_join.digest()
        assert "HashJoin" in hash_join.digest()

    def test_exchange_flag(self):
        exchange = PhysExchange(scan(), Distribution.single())
        assert exchange.is_exchange
        assert not scan().is_exchange


class TestAggregatePhases:
    def test_reduction_flags(self):
        def agg(phase):
            return PhysHashAggregate(
                scan(), (0,), (AggCall(AggFunc.COUNT, None),),
                phase, Distribution.single(),
            )

        assert agg(AggPhase.SINGLE).is_reduction
        assert agg(AggPhase.REDUCE).is_reduction
        assert not agg(AggPhase.MAP).is_reduction

    def test_output_fields(self):
        agg = PhysHashAggregate(
            scan(), (1,),
            (AggCall(AggFunc.SUM, ColRef(0), name="total"),),
            AggPhase.SINGLE, Distribution.single(),
        )
        assert agg.fields == ("t.b", "total")


class TestWalk:
    def test_preorder_traversal(self):
        tree = PhysFilter(
            PhysProject(scan(), [ColRef(0)], ["a"]),
            BinaryOp("=", ColRef(0), Literal(1)),
        )
        kinds = [type(n).__name__ for n in walk_physical(tree)]
        assert kinds == ["PhysFilter", "PhysProject", "PhysTableScan"]

    def test_values_is_a_leaf(self):
        values = PhysValues([(1,)], ["x"])
        assert list(walk_physical(values)) == [values]
