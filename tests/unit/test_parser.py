"""Unit tests for the recursive-descent SQL parser."""

import pytest

from repro.common.errors import SqlSyntaxError, UnsupportedSqlError
from repro.sql import ast
from repro.sql.parser import parse


class TestSelectCore:
    def test_simple_select(self):
        stmt = parse("select a, b from t")
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_items[0], ast.TableRef)
        assert stmt.from_items[0].name == "t"

    def test_select_star(self):
        stmt = parse("select * from t")
        assert stmt.items[0].expr.star

    def test_select_distinct(self):
        assert parse("select distinct a from t").distinct

    def test_column_alias_with_as(self):
        assert parse("select a as x from t").items[0].alias == "x"

    def test_column_alias_without_as(self):
        assert parse("select a x from t").items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse("select a from lineitem l")
        assert stmt.from_items[0].alias == "l"

    def test_comma_join(self):
        stmt = parse("select a from t1, t2, t3")
        assert len(stmt.from_items) == 3

    def test_limit(self):
        assert parse("select a from t limit 7").limit == 7

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a from t limit 1.5")

    def test_trailing_semicolon_is_accepted(self):
        parse("select a from t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a from t banana extra")


class TestExpressions:
    def _where(self, condition):
        return parse(f"select a from t where {condition}").where

    def test_precedence_or_under_and(self):
        expr = self._where("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, ast.Binary) and expr.op == "OR"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = self._where("a = 1 + 2 * 3")
        assert isinstance(expr.right, ast.Binary)
        assert expr.right.op == "+"
        assert expr.right.right.op == "*"

    def test_parenthesised_expression(self):
        expr = self._where("(a + 1) * 2 = 4")
        assert expr.left.op == "*"

    def test_unary_minus_folds_into_literal(self):
        expr = self._where("a = -5")
        assert isinstance(expr.right, ast.NumberLiteral)
        assert expr.right.value == -5

    def test_between(self):
        expr = self._where("a between 1 and 10")
        assert isinstance(expr, ast.BetweenExpr)

    def test_not_between(self):
        expr = self._where("a not between 1 and 10")
        assert expr.negated

    def test_like(self):
        expr = self._where("a like '%green%'")
        assert isinstance(expr, ast.LikeExprAst)
        assert expr.pattern == "%green%"

    def test_not_like(self):
        assert self._where("a not like 'x%'").negated

    def test_like_requires_string(self):
        with pytest.raises(SqlSyntaxError):
            self._where("a like 5")

    def test_in_list(self):
        expr = self._where("a in (1, 2, 3)")
        assert isinstance(expr, ast.InExpr)
        assert expr.values is not None and len(expr.values) == 3
        assert expr.subquery is None

    def test_not_in_list(self):
        assert self._where("a not in (1, 2)").negated

    def test_in_subquery(self):
        expr = self._where("a in (select b from s)")
        assert isinstance(expr, ast.InExpr)
        assert expr.subquery is not None

    def test_exists(self):
        expr = self._where("exists (select * from s)")
        assert isinstance(expr, ast.ExistsExpr)
        assert not expr.negated

    def test_not_exists(self):
        assert self._where("not exists (select * from s)").negated

    def test_scalar_subquery(self):
        expr = self._where("a > (select max(b) from s)")
        assert isinstance(expr.right, ast.ScalarSubquery)

    def test_is_null(self):
        expr = self._where("a is null")
        assert isinstance(expr, ast.IsNullExpr) and not expr.negated

    def test_is_not_null(self):
        assert self._where("a is not null").negated

    def test_case_expression(self):
        stmt = parse(
            "select case when a = 1 then 'one' when a = 2 then 'two' "
            "else 'many' end from t"
        )
        case = stmt.items[0].expr
        assert isinstance(case, ast.Case)
        assert len(case.whens) == 2
        assert case.default is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("select case else 1 end from t")

    def test_date_literal(self):
        expr = self._where("a >= date '1994-01-01'")
        assert isinstance(expr.right, ast.StringLiteral)
        assert expr.right.value == "1994-01-01"

    def test_boolean_literals(self):
        assert isinstance(self._where("a = true").right, ast.BoolLiteral)


class TestFunctions:
    def test_count_star(self):
        call = parse("select count(*) from t").items[0].expr
        assert call.star

    def test_count_distinct(self):
        call = parse("select count(distinct a) from t").items[0].expr
        assert call.distinct

    @pytest.mark.parametrize("fn", ["sum", "avg", "min", "max", "count"])
    def test_aggregates(self, fn):
        call = parse(f"select {fn}(a) from t").items[0].expr
        assert isinstance(call, ast.FunctionCall)
        assert call.name == fn

    def test_extract_year(self):
        call = parse("select extract(year from a) from t").items[0].expr
        assert call.name == "extract_year"

    def test_extract_month(self):
        call = parse("select extract(month from a) from t").items[0].expr
        assert call.name == "extract_month"

    def test_extract_rejects_day(self):
        with pytest.raises(SqlSyntaxError):
            parse("select extract(day from a) from t")

    def test_substring_from_for(self):
        call = parse("select substring(a from 1 for 2) from t").items[0].expr
        assert call.name == "substring"
        assert len(call.args) == 3

    def test_substring_comma_form(self):
        call = parse("select substring(a, 1, 2) from t").items[0].expr
        assert len(call.args) == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select frobnicate(a) from t")


class TestJoins:
    def test_explicit_inner_join(self):
        stmt = parse("select a from t1 join t2 on t1.x = t2.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinExpr)
        assert join.kind == "inner"

    def test_inner_keyword(self):
        join = parse("select a from t1 inner join t2 on t1.x = t2.y").from_items[0]
        assert join.kind == "inner"

    def test_left_outer_join(self):
        join = parse(
            "select a from t1 left outer join t2 on t1.x = t2.y"
        ).from_items[0]
        assert join.kind == "left"

    def test_left_join_without_outer(self):
        join = parse("select a from t1 left join t2 on t1.x = t2.y").from_items[0]
        assert join.kind == "left"

    def test_chained_joins(self):
        join = parse(
            "select a from t1 join t2 on t1.x = t2.y join t3 on t2.y = t3.z"
        ).from_items[0]
        assert isinstance(join.left, ast.JoinExpr)

    def test_derived_table(self):
        stmt = parse("select a from (select b from t) as d")
        sub = stmt.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "d"


class TestClauses:
    def test_group_by_multiple(self):
        stmt = parse("select a, b, sum(c) from t group by a, b")
        assert len(stmt.group_by) == 2

    def test_group_by_expression(self):
        stmt = parse(
            "select extract(year from d) from t group by extract(year from d)"
        )
        assert isinstance(stmt.group_by[0], ast.FunctionCall)

    def test_having(self):
        stmt = parse("select a, sum(b) from t group by a having sum(b) > 10")
        assert stmt.having is not None

    def test_order_by_desc(self):
        stmt = parse("select a from t order by a desc, b asc, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]


class TestUnsupported:
    def test_create_view_is_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            parse("create view v as select a from t")

    def test_create_table_parses(self):
        # CREATE TABLE became supported DDL with the storage-adapter work;
        # it now parses into a CreateTable statement instead of erroring.
        stmt = parse("create table t (a int)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.name == "t"
        assert stmt.columns == [("a", "int")]
        assert stmt.primary_key == []
        assert stmt.adapter is None

    def test_create_table_full_form(self):
        stmt = parse(
            "create table t (a int, b varchar, d date, "
            "primary key (a, b)) using columnfile"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns == [("a", "int"), ("b", "varchar"), ("d", "date")]
        assert stmt.primary_key == ["a", "b"]
        assert stmt.adapter == "columnfile"

    def test_create_table_requires_column_type(self):
        with pytest.raises(SqlSyntaxError):
            parse("create table t (a)")

    def test_union_is_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            parse("select a from t union select b from s")
