"""Unit tests for the seeded random query generator."""

import pytest

from helpers import make_company_store
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse
from repro.verify.generator import (
    QueryGenerator,
    SchemaProfile,
    _joinable,
)


@pytest.fixture(scope="module")
def store():
    return make_company_store(sites=4)


class TestJoinEdges:
    def test_identical_names_are_joinable(self):
        assert _joinable("dept_id", "dept_id")

    def test_key_suffix_convention_is_joinable(self):
        assert _joinable("l_orderkey", "o_orderkey")
        assert _joinable("c_nationkey", "n_nationkey")

    def test_unrelated_columns_are_not_joinable(self):
        assert not _joinable("name", "salary")
        assert not _joinable("l_comment", "o_comment")  # no *key suffix

    def test_company_profile_derives_expected_edges(self, store):
        profile = SchemaProfile(store)
        edge_pairs = {
            (e.left_table, e.left_column, e.right_table, e.right_column)
            for e in profile.edges
        }
        assert ("dept", "dept_id", "emp", "dept_id") in edge_pairs
        assert ("emp", "emp_id", "sales", "emp_id") in edge_pairs

    def test_extra_edges_are_appended(self, store):
        profile = SchemaProfile(
            store, extra_edges=(("dept", "budget", "sales", "amount"),)
        )
        assert any(
            e.left_column == "budget" and e.right_column == "amount"
            for e in profile.edges
        )


class TestGeneratedQueries:
    def test_same_seed_is_deterministic(self, store):
        a = QueryGenerator(store, seed=11).queries(20)
        b = QueryGenerator(store, seed=11).queries(20)
        assert a == b

    def test_different_seeds_differ(self, store):
        a = QueryGenerator(store, seed=1).queries(20)
        b = QueryGenerator(store, seed=2).queries(20)
        assert a != b

    def test_all_queries_parse_and_convert(self, store):
        converter = SqlToRelConverter(store.catalog)
        for sql in QueryGenerator(store, seed=3).queries(40):
            converter.convert(parse(sql))

    def test_mix_includes_joins_and_aggregates(self, store):
        queries = QueryGenerator(store, seed=4).queries(60)
        assert any(" t1" in q for q in queries), "expected some joins"
        assert any("group by" in q for q in queries)
        assert any("order by" in q for q in queries)
        assert any("where" in q for q in queries)

    def test_limit_always_rides_on_a_total_order(self, store):
        # LIMIT without a deterministic order would make differential
        # comparison flaky; the generator must never emit a bare LIMIT.
        queries = QueryGenerator(store, seed=5).queries(200)
        limited = [q for q in queries if " limit " in q]
        assert limited, "expected some LIMIT queries in 200 samples"
        for sql in limited:
            assert " order by " in sql
