"""Unit tests for the reporting artefact structures (rendering only)."""

from repro.bench.reporting import AqlTable, ChaosTable, GainFigure


class TestGainFigure:
    def _figure(self):
        figure = GainFigure("Figure X", ["Q1", "Q2"], (4, 8))
        figure.gains[("Q1", 4)] = 1.5
        figure.gains[("Q1", 8)] = 2.25
        figure.gains[("Q2", 4)] = None
        figure.gains[("Q2", 8)] = None
        return figure

    def test_markdown_has_header_and_rows(self):
        text = self._figure().to_markdown()
        lines = text.splitlines()
        assert lines[0] == "### Figure X"
        assert "| query | 4 sites | 8 sites |" in lines
        assert "| Q1 | 1.50x | 2.25x |" in lines

    def test_missing_gains_render_na(self):
        assert "| Q2 | n/a | n/a |" in self._figure().to_markdown()

    def test_divider_matches_column_count(self):
        text = self._figure().to_markdown()
        divider = [
            l for l in text.splitlines() if l and set(l) <= {"|", "-"}
        ][0]
        assert divider.count("---") == 3


class TestAqlTable:
    def test_markdown_rendering(self):
        table = AqlTable("Table 3", (4,), ("IC", "IC+"), (2, 4))
        table.latencies[(4, "IC", 2)] = 1.234
        table.latencies[(4, "IC+", 2)] = 0.5
        table.latencies[(4, "IC", 4)] = 2.0
        table.latencies[(4, "IC+", 4)] = 0.75
        text = table.to_markdown()
        assert "| clients | IC@4 | IC+@4 |" in text
        assert "| 2 | 1.234 | 0.500 |" in text
        assert "| 4 | 2.000 | 0.750 |" in text


class TestChaosTable:
    def _table(self):
        table = ChaosTable(
            "Chaos X",
            availability=0.75,
            total_retries=3,
            makespan=1.5,
            percentiles={50.0: 0.1, 95.0: 0.4},
        )
        table.rows.append(("Q1", "retried", 2, 0.1234))
        table.rows.append(("Q2", "failed_site", 1, None))
        return table

    def test_markdown_summary_line(self):
        text = self._table().to_markdown()
        assert "availability 75.0%, 3 retries, makespan 1.500s" in text
        assert "p50 0.1000s, p95 0.4000s" in text

    def test_markdown_rows(self):
        text = self._table().to_markdown()
        assert "| Q1 | retried | 2 | 0.1234s |" in text
        assert "| Q2 | failed_site | 1 | — |" in text
