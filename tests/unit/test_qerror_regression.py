"""Regression tests pinning cardinality-estimate quality via q-error.

The Section 4.1 fix replaces Ignite's legacy join-size estimate (which
collapses to 1 row whenever an input looks small) with the Swami-Schiefer
estimate (Eq. 3): ``|A| * |B| / max(d_A, d_B)``.  These tests pin both
formulas and verify, on a known join, that the fixed estimator's
per-operator q-error stays small where the legacy one is badly wrong.
"""

import pytest

from repro.bench.tpch import load_tpch_cluster
from repro.common.config import SystemConfig
from repro.obs.metrics import q_error
from repro.stats.estimator import (
    LEGACY_SMALL_INPUT,
    legacy_join_size,
    swami_schiefer_join_size,
)

pytestmark = pytest.mark.obs

#: A primary-key lookup joined against the full orders table: the classic
#: small-input case where the legacy estimator collapses to 1 row.
SMALL_INPUT_JOIN = (
    "select o.o_orderkey from orders o, customer c "
    "where o.o_custkey = c.c_custkey and c.c_custkey = 7"
)


def test_eq3_formula_pinned():
    # |A| * |B| / max(d_A, d_B)
    assert swami_schiefer_join_size(1000, 500, 100, 50) == 5000.0
    assert swami_schiefer_join_size(1000, 500, 50, 100) == 5000.0
    # missing distinct counts default to 1 (no division blow-up)
    assert swami_schiefer_join_size(10, 10, None, None) == 100.0
    # floored at one row
    assert swami_schiefer_join_size(1, 1, 1000, 1000) == 1.0


def test_legacy_small_input_collapse_pinned():
    # healthy inputs: behaves like Eq. 3
    assert legacy_join_size(1000, 500, 100, 50) == 5000.0
    # the defect: any small input collapses the whole estimate to 1
    assert legacy_join_size(LEGACY_SMALL_INPUT, 10_000, 100, 100) == 1.0
    assert legacy_join_size(10_000, 1.0, 100, 100) == 1.0


def test_eq3_beats_legacy_on_known_join():
    """On customer(pk lookup) |x| orders, Eq. 3 tracks the actual rows.

    The legacy estimator predicts 1 row for the join (q-error == actual
    row count); Eq. 3 predicts |orders| / d(o_custkey)-ish and lands
    within a small factor.  Executed on both IC (legacy) and IC+ (fixed)
    so the pin covers the whole planner stack, not just the formula.
    """
    ic = load_tpch_cluster(SystemConfig.ic(4), 0.05)
    fixed = load_tpch_cluster(SystemConfig.ic_plus(4), 0.05)
    legacy_result = ic.sql(SMALL_INPUT_JOIN)
    fixed_result = fixed.sql(SMALL_INPUT_JOIN)
    # same answer either way — estimation only steers the plan
    assert sorted(legacy_result.rows) == sorted(fixed_result.rows)
    actual = legacy_result.row_count
    assert actual == 18  # orders placed by customer 7 at SF 0.05
    # the legacy plan's worst operator is off by the full join size;
    # the fixed plan stays within a small constant
    assert legacy_result.max_q_error() == pytest.approx(actual)
    assert fixed_result.max_q_error() <= 5.0
    assert fixed_result.max_q_error() < legacy_result.max_q_error()


def test_explain_analyze_reports_per_operator_q_error():
    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), 0.05)
    text = cluster.explain_analyze(SMALL_INPUT_JOIN)
    assert "q-err=" in text
    # every annotated operator line carries the actuals and the q-error
    for line in text.splitlines():
        if "actual rows=" in line:
            assert "q-err=" in line


def test_max_q_error_is_the_worst_operator():
    cluster = load_tpch_cluster(SystemConfig.ic(4), 0.05)
    result = cluster.sql(SMALL_INPUT_JOIN)
    # broadcast operators are excluded: their actuals sum every copy
    per_op = [
        q_error(op.rows_est, result.operator_actuals[id(op)][0])
        for fragment in result.fragment_trees
        for op in fragment.operators()
        if id(op) in result.operator_actuals
        and not (
            getattr(op, "distribution", None) is not None
            and op.distribution.is_broadcast
        )
    ]
    assert result.max_q_error() == max(per_op)
