"""Unit tests for SQL-to-relational conversion and decorrelation."""

import pytest

from repro.catalog.schema import Catalog, Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.errors import (
    PlannerDefectError,
    UnsupportedSqlError,
    ValidationError,
)
from repro.rel.logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalSort,
    LogicalTableScan,
    walk,
)
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

I = ColumnType.INTEGER
D = ColumnType.DOUBLE
S = ColumnType.VARCHAR


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        TableSchema(
            "emp",
            [Column("emp_id", I), Column("dept_id", I), Column("salary", D)],
            ["emp_id"],
        )
    )
    cat.register(
        TableSchema(
            "dept",
            [Column("dept_id", I), Column("dept_name", S)],
            ["dept_id"],
        )
    )
    cat.register(
        TableSchema(
            "sales",
            [Column("sale_id", I), Column("emp_id", I), Column("amount", D)],
            ["sale_id"],
        )
    )
    return cat


def convert(catalog, sql, **kwargs):
    return SqlToRelConverter(catalog, **kwargs).convert(parse(sql))


def nodes_of(plan, cls):
    return [n for n in walk(plan) if isinstance(n, cls)]


class TestBasics:
    def test_scan_project(self, catalog):
        plan = convert(catalog, "select emp_id from emp")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.input, LogicalTableScan)
        assert plan.fields == ("emp_id",)

    def test_star_expansion(self, catalog):
        plan = convert(catalog, "select * from emp")
        assert plan.width == 3

    def test_where_becomes_filter(self, catalog):
        plan = convert(catalog, "select emp_id from emp where salary > 100")
        assert nodes_of(plan, LogicalFilter)

    def test_qualified_and_unqualified_names(self, catalog):
        plan = convert(
            catalog, "select e.salary, dept_id from emp e where e.emp_id = 1"
        )
        assert plan.fields == ("salary", "dept_id")

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(ValidationError):
            convert(catalog, "select ghost from emp")

    def test_ambiguous_column_raises(self, catalog):
        with pytest.raises(ValidationError):
            convert(catalog, "select dept_id from emp, dept")

    def test_duplicate_alias_raises(self, catalog):
        with pytest.raises(ValidationError):
            convert(catalog, "select e.emp_id from emp e, dept e")

    def test_comma_join_is_cross_join(self, catalog):
        plan = convert(catalog, "select e.emp_id from emp e, dept d")
        joins = nodes_of(plan, LogicalJoin)
        assert len(joins) == 1
        assert joins[0].condition is None

    def test_explicit_join_condition(self, catalog):
        plan = convert(
            catalog,
            "select e.emp_id from emp e join dept d on e.dept_id = d.dept_id",
        )
        join = nodes_of(plan, LogicalJoin)[0]
        assert join.condition is not None
        assert join.join_type is JoinType.INNER

    def test_left_join(self, catalog):
        plan = convert(
            catalog,
            "select e.emp_id from emp e left join sales s on e.emp_id = s.emp_id",
        )
        assert nodes_of(plan, LogicalJoin)[0].join_type is JoinType.LEFT

    def test_order_and_limit(self, catalog):
        plan = convert(
            catalog, "select emp_id from emp order by emp_id desc limit 3"
        )
        assert isinstance(plan, LogicalSort)
        assert plan.fetch == 3
        assert plan.sort_keys == ((0, False),)

    def test_order_by_position(self, catalog):
        plan = convert(catalog, "select emp_id, salary from emp order by 2")
        assert plan.sort_keys == ((1, True),)

    def test_order_by_out_of_range_position(self, catalog):
        with pytest.raises(ValidationError):
            convert(catalog, "select emp_id from emp order by 5")

    def test_distinct_becomes_aggregate(self, catalog):
        plan = convert(catalog, "select distinct dept_id from emp")
        aggs = nodes_of(plan, LogicalAggregate)
        assert aggs and aggs[0].group_keys == (0,)
        assert not aggs[0].agg_calls


class TestAggregation:
    def test_group_by_with_aggregates(self, catalog):
        plan = convert(
            catalog,
            "select dept_id, sum(salary), count(*) from emp group by dept_id",
        )
        agg = nodes_of(plan, LogicalAggregate)[0]
        assert agg.group_keys == (0,)
        assert len(agg.agg_calls) == 2

    def test_duplicate_agg_calls_are_shared(self, catalog):
        plan = convert(
            catalog,
            "select dept_id, sum(salary), sum(salary) / count(*) "
            "from emp group by dept_id",
        )
        agg = nodes_of(plan, LogicalAggregate)[0]
        assert len(agg.agg_calls) == 2  # sum and count, not two sums

    def test_scalar_aggregate_without_group_by(self, catalog):
        plan = convert(catalog, "select max(salary) from emp")
        agg = nodes_of(plan, LogicalAggregate)[0]
        assert agg.group_keys == ()

    def test_group_by_expression(self, catalog):
        plan = convert(
            catalog,
            "select dept_id + 1, count(*) from emp group by dept_id + 1",
        )
        assert nodes_of(plan, LogicalAggregate)

    def test_having_becomes_filter_over_aggregate(self, catalog):
        plan = convert(
            catalog,
            "select dept_id from emp group by dept_id having count(*) > 2",
        )
        filters = nodes_of(plan, LogicalFilter)
        assert any(
            isinstance(f.input, LogicalAggregate) for f in filters
        )

    def test_ungrouped_column_raises(self, catalog):
        with pytest.raises(ValidationError):
            convert(catalog, "select salary, count(*) from emp group by dept_id")

    def test_order_by_aggregate_alias(self, catalog):
        plan = convert(
            catalog,
            "select dept_id, sum(salary) as total from emp "
            "group by dept_id order by total desc",
        )
        assert isinstance(plan, LogicalSort)
        assert plan.sort_keys == ((1, False),)


class TestSubqueries:
    def test_correlated_exists_becomes_semi_join(self, catalog):
        plan = convert(
            catalog,
            "select emp_id from emp e where exists "
            "(select * from sales s where s.emp_id = e.emp_id)",
        )
        join = nodes_of(plan, LogicalJoin)[0]
        assert join.join_type is JoinType.SEMI
        assert join.correlate_origin

    def test_not_exists_becomes_anti_join(self, catalog):
        plan = convert(
            catalog,
            "select emp_id from emp e where not exists "
            "(select * from sales s where s.emp_id = e.emp_id)",
        )
        assert nodes_of(plan, LogicalJoin)[0].join_type is JoinType.ANTI

    def test_uncorrelated_in_subquery_is_not_a_correlate(self, catalog):
        plan = convert(
            catalog,
            "select emp_id from emp where dept_id in "
            "(select dept_id from dept)",
        )
        join = nodes_of(plan, LogicalJoin)[0]
        assert join.join_type is JoinType.SEMI
        assert not join.correlate_origin

    def test_not_in_becomes_anti_join(self, catalog):
        plan = convert(
            catalog,
            "select emp_id from emp where dept_id not in "
            "(select dept_id from dept)",
        )
        assert nodes_of(plan, LogicalJoin)[0].join_type is JoinType.ANTI

    def test_in_subquery_with_grouping(self, catalog):
        plan = convert(
            catalog,
            "select emp_id from emp where emp_id in "
            "(select s.emp_id from sales s group by s.emp_id "
            "having sum(s.amount) > 100)",
        )
        assert nodes_of(plan, LogicalAggregate)

    def test_uncorrelated_scalar_subquery(self, catalog):
        plan = convert(
            catalog,
            "select emp_id from emp where salary > "
            "(select avg(salary) from emp)",
        )
        agg = nodes_of(plan, LogicalAggregate)[0]
        assert agg.group_keys == ()
        join = nodes_of(plan, LogicalJoin)[0]
        assert join.condition is None  # single-row cross join

    def test_correlated_scalar_aggregate_decorrelates(self, catalog):
        plan = convert(
            catalog,
            "select e.emp_id from emp e where e.salary > "
            "(select avg(s.amount) from sales s where s.emp_id = e.emp_id)",
        )
        agg = nodes_of(plan, LogicalAggregate)[0]
        assert agg.group_keys == (0,)  # grouped by the correlation key
        join = nodes_of(plan, LogicalJoin)[0]
        assert join.correlate_origin
        assert join.join_type is JoinType.INNER

    def test_non_equality_correlation_in_exists(self, catalog):
        plan = convert(
            catalog,
            "select e1.emp_id from emp e1 where exists "
            "(select * from emp e2 where e2.dept_id = e1.dept_id "
            "and e2.emp_id <> e1.emp_id)",
        )
        join = nodes_of(plan, LogicalJoin)[0]
        assert join.join_type is JoinType.SEMI
        assert "<>" in join.condition.digest()

    def test_scalar_subquery_must_be_bare_aggregate(self, catalog):
        with pytest.raises(UnsupportedSqlError):
            convert(
                catalog,
                "select emp_id from emp where salary > "
                "(select 2 * avg(salary) from emp)",
            )

    def test_correlated_scalar_with_grouping_unsupported(self, catalog):
        with pytest.raises(UnsupportedSqlError):
            convert(
                catalog,
                "select e.emp_id from emp e where e.salary > "
                "(select avg(s.amount) from sales s "
                "where s.emp_id = e.emp_id group by s.sale_id)",
            )

    def test_q20_shape_trips_planner_defect(self, catalog):
        sql = (
            "select emp_id from emp where emp_id in "
            "(select s.emp_id from sales s where s.amount > "
            "(select avg(s2.amount) from sales s2 where s2.emp_id = s.emp_id))"
        )
        with pytest.raises(PlannerDefectError):
            convert(catalog, sql)

    def test_q20_shape_converts_when_defect_fixed(self, catalog):
        sql = (
            "select emp_id from emp where emp_id in "
            "(select s.emp_id from sales s where s.amount > "
            "(select avg(s2.amount) from sales s2 where s2.emp_id = s.emp_id))"
        )
        plan = convert(catalog, sql, q20_defect_fixed=True)
        semis = [
            j for j in nodes_of(plan, LogicalJoin)
            if j.join_type is JoinType.SEMI
        ]
        assert semis

    def test_derived_table(self, catalog):
        plan = convert(
            catalog,
            "select d.total from (select dept_id, sum(salary) as total "
            "from emp group by dept_id) as d where d.total > 10",
        )
        assert plan.fields == ("total",)
