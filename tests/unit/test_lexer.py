"""Unit tests for the SQL tokenizer."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_recognised(self):
        tokens = tokenize("select from where")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_are_lowercased(self):
        assert values("LineItem L_OrderKey") == ["lineitem", "l_orderkey"]

    def test_keywords_are_case_insensitive(self):
        assert tokenize("SeLeCt")[0].is_keyword("select")

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_decimal_literal(self):
        token = tokenize("0.05")[0]
        assert token.value == pytest.approx(0.05)
        assert isinstance(token.value, float)

    def test_qualified_name_is_not_a_decimal(self):
        assert values("t1.col") == ["t1", ".", "col"]

    def test_string_literal(self):
        token = tokenize("'ASIA'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "ASIA"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_eof_token_is_appended(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestSymbols:
    @pytest.mark.parametrize(
        "symbol", ["=", "<", ">", "<=", ">=", "<>", "(", ")", ",", "+", "-", "*", "/", ";"]
    )
    def test_symbol(self, symbol):
        token = tokenize(symbol)[0]
        assert token.type is TokenType.SYMBOL
        assert token.value == symbol

    def test_bang_equals_normalises_to_angle_brackets(self):
        assert tokenize("!=")[0].value == "<>"

    def test_two_char_symbols_win_over_one_char(self):
        assert values("a<=b") == ["a", "<=", "b"]


class TestCommentsAndErrors:
    def test_line_comment_is_skipped(self):
        assert values("select -- comment here\n 1") == ["select", 1]

    def test_comment_at_end_of_input(self):
        assert values("1 -- trailing") == [1]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'unterminated")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("a\nb @")
        assert info.value.line == 2

    def test_line_numbers_advance(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2


class TestWholeStatements:
    def test_representative_query_token_count(self):
        sql = "select a, sum(b) from t where c >= 10 group by a order by a desc"
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) == 21

    def test_token_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "select", 1, 1)
        assert token.is_keyword("select")
        assert not token.is_keyword("from")
