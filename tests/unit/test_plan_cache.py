"""Unit tests for the LRU plan cache (repro.adaptive.cache)."""

import pytest

from repro.adaptive.cache import CacheEntry, PlanCache
from repro.obs.metrics import get_registry

pytestmark = pytest.mark.adaptive


def entry(key, literals=(), plan="plan"):
    return CacheEntry(key=key, literals=tuple(literals), plan=plan)


class TestLookup:
    def test_miss_then_hit(self):
        cache = PlanCache(4)
        assert cache.lookup("k", ()) is None
        cache.store(entry("k"))
        found = cache.lookup("k", ())
        assert found is not None and found.plan == "plan"
        registry = get_registry()
        assert registry.counter("plan_cache.misses") == 1.0
        assert registry.counter("plan_cache.hits") == 1.0

    def test_literal_mismatch_is_a_miss(self):
        cache = PlanCache(4)
        cache.store(entry("k", literals=(5,)))
        assert cache.lookup("k", (6,)) is None
        assert cache.lookup("k", (5,)) is not None

    def test_hit_counts_per_entry(self):
        cache = PlanCache(4)
        cache.store(entry("k"))
        cache.lookup("k", ())
        cache.lookup("k", ())
        assert cache.peek("k").hits == 2

    def test_peek_is_silent(self):
        cache = PlanCache(4)
        cache.store(entry("k"))
        cache.peek("k")
        registry = get_registry()
        assert registry.counter("plan_cache.hits") == 0.0
        assert registry.counter("plan_cache.misses") == 0.0


class TestEviction:
    def test_lru_eviction_over_capacity(self):
        cache = PlanCache(2)
        cache.store(entry("a"))
        cache.store(entry("b"))
        cache.lookup("a", ())  # a is now most recently used
        cache.store(entry("c"))  # evicts b
        assert cache.peek("b") is None
        assert cache.peek("a") is not None
        assert cache.peek("c") is not None
        assert get_registry().counter("plan_cache.evictions") == 1.0

    def test_explicit_evict(self):
        cache = PlanCache(4)
        cache.store(entry("a"))
        cache.evict("a")
        assert cache.peek("a") is None
        cache.evict("a")  # idempotent

    def test_clear_counts_invalidations(self):
        cache = PlanCache(4)
        cache.store(entry("a"))
        cache.store(entry("b"))
        cache.clear()
        assert len(cache) == 0
        assert get_registry().counter("plan_cache.invalidations") == 2.0

    def test_restore_same_key_replaces(self):
        cache = PlanCache(2)
        cache.store(entry("a", plan="old"))
        cache.store(entry("a", plan="new"))
        assert len(cache) == 1
        assert cache.peek("a").plan == "new"
