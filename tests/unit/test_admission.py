"""Unit tests for the admission controller and its policies."""

import pytest

from repro.obs.metrics import get_registry
from repro.serve.admission import (
    REASON_QUEUE_FULL,
    REASON_SHED,
    AdmissionController,
    AdmissionError,
)
from repro.serve.traffic import (
    PoissonArrivals,
    QueryRequest,
    QueryTemplate,
    TenantSpec,
)

pytestmark = pytest.mark.serve

TEMPLATES = (QueryTemplate("q", "SELECT 1"),)


def _tenant(name, priority=0, weight=1.0, slots=0):
    return TenantSpec(
        name=name,
        templates=TEMPLATES,
        arrivals=PoissonArrivals(rate=1.0),
        priority=priority,
        weight=weight,
        slots=slots,
    )


def _request(tenant, rid, arrival=0.0):
    return QueryRequest(
        tenant=tenant.name,
        request_id=rid,
        template="q",
        sql="SELECT 1",
        arrival=arrival,
        priority=tenant.priority,
        weight=tenant.weight,
    )


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(AdmissionError):
            AdmissionController([_tenant("a")], policy="lifo")

    def test_negative_caps(self):
        with pytest.raises(AdmissionError):
            AdmissionController([_tenant("a")], queue_depth=-1)
        with pytest.raises(AdmissionError):
            AdmissionController([_tenant("a")], shed_wait_seconds=-0.5)

    def test_unknown_tenant_rejected(self):
        ctrl = AdmissionController([_tenant("a")])
        ghost = _tenant("ghost")
        with pytest.raises(AdmissionError):
            ctrl.offer(_request(ghost, 1), now=0.0)

    def test_finish_without_admit(self):
        tenant = _tenant("a")
        ctrl = AdmissionController([tenant])
        with pytest.raises(AdmissionError):
            ctrl.finish(_request(tenant, 1))


class TestBoundedQueue:
    def test_rejects_beyond_depth(self):
        tenant = _tenant("a")
        ctrl = AdmissionController([tenant], queue_depth=2)
        assert ctrl.offer(_request(tenant, 1), 0.0)
        assert ctrl.offer(_request(tenant, 2), 0.0)
        assert not ctrl.offer(_request(tenant, 3), 0.0)
        assert len(ctrl) == 2
        assert ctrl.max_queue_depth == 2
        registry = get_registry()
        assert registry.counter("serve.offered", tenant="a") == 3
        assert (
            registry.counter(
                "serve.rejected", tenant="a", reason=REASON_QUEUE_FULL
            )
            == 1
        )

    def test_zero_depth_is_unbounded(self):
        tenant = _tenant("a")
        ctrl = AdmissionController([tenant], queue_depth=0)
        for rid in range(50):
            assert ctrl.offer(_request(tenant, rid), 0.0)
        assert len(ctrl) == 50


class TestShedding:
    def test_sheds_overdue_requests(self):
        tenant = _tenant("a")
        ctrl = AdmissionController([tenant], shed_wait_seconds=1.0)
        ctrl.offer(_request(tenant, 1, arrival=0.0), 0.0)
        ctrl.offer(_request(tenant, 2, arrival=1.8), 1.8)
        shed = ctrl.shed(now=2.0)
        assert [r.request_id for r in shed] == [1]
        assert len(ctrl) == 1
        assert (
            get_registry().counter(
                "serve.rejected", tenant="a", reason=REASON_SHED
            )
            == 1
        )

    def test_no_shed_when_disabled(self):
        tenant = _tenant("a")
        ctrl = AdmissionController([tenant])
        ctrl.offer(_request(tenant, 1, arrival=0.0), 0.0)
        assert ctrl.shed(now=100.0) == []


class TestFifoPolicy:
    def test_arrival_order(self):
        a, b = _tenant("a"), _tenant("b")
        ctrl = AdmissionController([a, b], policy="fifo")
        ctrl.offer(_request(b, 1), 0.0)
        ctrl.offer(_request(a, 2), 0.0)
        assert ctrl.admit(0.0).request_id == 1
        assert ctrl.admit(0.0).request_id == 2
        assert ctrl.admit(0.0) is None


class TestPriorityPolicy:
    def test_highest_priority_first(self):
        gold, free = _tenant("gold", priority=5), _tenant("free", priority=0)
        ctrl = AdmissionController([gold, free], policy="priority")
        ctrl.offer(_request(free, 1), 0.0)
        ctrl.offer(_request(gold, 2), 0.0)
        ctrl.offer(_request(free, 3), 0.0)
        ctrl.offer(_request(gold, 4), 0.0)
        order = [ctrl.admit(0.0).request_id for _ in range(4)]
        assert order == [2, 4, 1, 3]


class TestWfqPolicy:
    def test_service_shares_follow_weights(self):
        heavy = _tenant("heavy", weight=3.0)
        light = _tenant("light", weight=1.0)
        ctrl = AdmissionController(
            [heavy, light], policy="wfq", max_concurrent=0
        )
        for rid in range(12):
            ctrl.offer(_request(heavy, 100 + rid), 0.0)
            ctrl.offer(_request(light, 200 + rid), 0.0)
        admitted = [ctrl.admit(0.0).request_id for _ in range(8)]
        heavy_share = sum(1 for rid in admitted if rid < 200)
        # 3:1 weights => ~6 of the first 8 admissions go to `heavy`.
        assert heavy_share == 6


class TestConcurrencyCaps:
    def test_global_cap(self):
        tenant = _tenant("a")
        ctrl = AdmissionController([tenant], max_concurrent=2)
        for rid in range(3):
            ctrl.offer(_request(tenant, rid), 0.0)
        first = ctrl.admit(0.0)
        second = ctrl.admit(0.0)
        assert first and second
        assert ctrl.admit(0.0) is None  # at the cap
        ctrl.finish(first)
        assert ctrl.admit(0.0) is not None

    def test_tenant_slots_allow_overtaking(self):
        a, b = _tenant("a", slots=1), _tenant("b")
        ctrl = AdmissionController([a, b], policy="fifo")
        ctrl.offer(_request(a, 1), 0.0)
        ctrl.offer(_request(a, 2), 0.0)
        ctrl.offer(_request(b, 3), 0.0)
        assert ctrl.admit(0.0).request_id == 1
        # a's second request is blocked by its slot cap; b overtakes.
        assert ctrl.admit(0.0).request_id == 3
        assert ctrl.admit(0.0) is None

    def test_default_tenant_slots_from_controller(self):
        a = _tenant("a")  # no per-spec cap
        ctrl = AdmissionController([a], tenant_slots=1)
        ctrl.offer(_request(a, 1), 0.0)
        ctrl.offer(_request(a, 2), 0.0)
        assert ctrl.admit(0.0) is not None
        assert ctrl.admit(0.0) is None


class TestDeterminism:
    def test_equal_rank_breaks_on_sequence_then_tenant(self):
        a, b = _tenant("a"), _tenant("b")
        ctrl = AdmissionController([a, b], policy="priority")
        ctrl.offer(_request(a, 1), 0.0)
        ctrl.offer(_request(b, 2), 0.0)
        # Same priority: earlier offer wins.
        assert ctrl.admit(0.0).request_id == 1
