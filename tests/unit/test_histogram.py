"""Unit tests for equi-depth histograms and their estimator integration."""

import random

import pytest

from repro.catalog.histogram import EquiDepthHistogram
from repro.catalog.statistics import compute_table_stats


class TestConstruction:
    def test_uniform_values(self):
        histogram = EquiDepthHistogram.build(list(range(1000)))
        assert histogram is not None
        assert histogram.bucket_count >= 32
        assert histogram.boundaries[0] == 0
        assert histogram.boundaries[-1] == 999

    def test_empty_and_constant_columns_yield_none(self):
        assert EquiDepthHistogram.build([]) is None
        assert EquiDepthHistogram.build([5]) is None
        assert EquiDepthHistogram.build([7] * 100) is None

    def test_nulls_are_dropped(self):
        histogram = EquiDepthHistogram.build([None, 1, None, 2, 3])
        assert histogram is not None

    def test_too_few_boundaries_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram([1])

    def test_large_inputs_are_sampled(self):
        histogram = EquiDepthHistogram.build(list(range(100_000)))
        assert histogram is not None
        assert len(histogram.boundaries) <= 65

    def test_degenerate_boundaries_rejected(self):
        """A 'histogram' whose boundaries hold one distinct value prices
        every range at 0 or 1 — the constructor refuses it."""
        with pytest.raises(ValueError):
            EquiDepthHistogram([7, 7])
        with pytest.raises(ValueError):
            EquiDepthHistogram([7] * 65)

    def test_property_constant_and_near_constant_columns(self):
        """Property sweep: for any mix of one dominant value and a handful
        of outliers, ``build`` either returns None (nothing to summarise)
        or a histogram with two distinct end boundaries whose estimates
        stay inside [0, 1]."""
        rng = random.Random(17)
        for trial in range(50):
            dominant = rng.randrange(-5, 5)
            outliers = rng.randrange(0, 4)
            values = [dominant] * rng.randrange(2, 400)
            values += [dominant + rng.randrange(1, 100) for _ in range(outliers)]
            rng.shuffle(values)
            histogram = EquiDepthHistogram.build(values)
            if len(set(values)) == 1:
                assert histogram is None, f"trial {trial}: constant column"
                continue
            # Near-constant columns may still be summarisable; when they
            # are, the histogram must be well-formed.
            if histogram is None:
                continue
            assert histogram.boundaries[0] != histogram.boundaries[-1]
            for probe in (min(values) - 1, dominant, max(values) + 1):
                fraction = histogram.fraction_below(probe)
                assert 0.0 <= fraction <= 1.0

    def test_constant_after_sampling_returns_none(self):
        """A column whose sample collapses to one value (one outlier in a
        sea of constants, dropped by the stride sample) must yield None,
        not a degenerate histogram."""
        values = [5] * 100_000 + [6]
        assert EquiDepthHistogram.build(values) is None


class TestEstimation:
    def test_uniform_fraction_below(self):
        histogram = EquiDepthHistogram.build(list(range(1000)))
        assert histogram.fraction_below(500) == pytest.approx(0.5, abs=0.05)
        assert histogram.fraction_below(-10) == 0.0
        assert histogram.fraction_below(5000) == 1.0

    def test_range_fraction(self):
        histogram = EquiDepthHistogram.build(list(range(1000)))
        assert histogram.range_fraction(250, 750) == pytest.approx(0.5, abs=0.05)
        assert histogram.range_fraction(None, 100) == pytest.approx(0.1, abs=0.05)
        assert histogram.range_fraction(900, None) == pytest.approx(0.1, abs=0.05)

    def test_skewed_distribution(self):
        """Equi-depth buckets track skew: 90 % of rows below 10."""
        rng = random.Random(3)
        values = [rng.randrange(10) for _ in range(9000)]
        values += [rng.randrange(10, 1000) for _ in range(1000)]
        histogram = EquiDepthHistogram.build(values)
        below = histogram.fraction_below(10)
        assert below == pytest.approx(0.9, abs=0.05)
        # Linear min/max interpolation would have said ~1 %.
        assert below > 0.5

    def test_date_strings(self):
        dates = [f"199{y}-0{m}-15" for y in range(5) for m in range(1, 10)]
        histogram = EquiDepthHistogram.build(dates * 20)
        below = histogram.fraction_below("1992-06-15")
        assert 0.3 < below < 0.7


class TestStatisticsIntegration:
    def test_table_stats_carry_histograms(self):
        rows = [(i, float(i % 7)) for i in range(500)]
        stats = compute_table_stats(rows, ["k", "v"])
        assert stats.column("k").histogram is not None
        assert stats.column("v").histogram is not None

    def test_constant_column_has_no_histogram(self):
        rows = [(i, 1) for i in range(100)]
        stats = compute_table_stats(rows, ["k", "c"])
        assert stats.column("c").histogram is None

    def test_estimator_uses_histogram_under_skew(self):
        from repro.catalog.schema import Column, TableSchema
        from repro.catalog.types import ColumnType
        from repro.rel.expr import BinaryOp, ColRef, Literal
        from repro.rel.logical import LogicalFilter, LogicalTableScan
        from repro.stats.estimator import Estimator
        from repro.storage.store import DataStore

        rng = random.Random(9)
        rows = [(i, float(rng.randrange(10))) for i in range(900)]
        rows += [(900 + i, float(rng.randrange(10, 1000))) for i in range(100)]
        store = DataStore(site_count=2)
        store.create_table(
            TableSchema(
                "skew",
                [Column("k", ColumnType.INTEGER), Column("v", ColumnType.DOUBLE)],
                ["k"],
            ),
            rows,
        )
        estimator = Estimator(store, fixed_join_estimation=True)
        scan = LogicalTableScan("skew", "skew", ["k", "v"])
        node = LogicalFilter(scan, BinaryOp("<", ColRef(1), Literal(10.0)))
        estimate = estimator.row_count(node)
        actual = sum(1 for r in rows if r[1] < 10.0)
        assert estimate == pytest.approx(actual, rel=0.15)


class TestDistinctEstimate:
    """Regression: the histogram-derived NDV used to be read off the
    stored boundaries, which retain at most ``bucket_count + 1`` distinct
    values — a 64-bucket histogram over a 1000-value column silently
    reported <= 65."""

    def test_high_ndv_not_truncated_by_buckets(self):
        histogram = EquiDepthHistogram.build(list(range(1000)))
        assert histogram.bucket_count <= 64
        assert histogram.distinct_estimate() == 1000

    def test_ndv_tracked_before_sampling(self):
        # 100k distinct values, sampled down to 4096 during the build:
        # the NDV must reflect the full input, not the sample.
        histogram = EquiDepthHistogram.build(list(range(100_000)))
        assert histogram.distinct_estimate() == 100_000

    def test_caller_pinned_ndv_wins(self):
        histogram = EquiDepthHistogram.build(
            [1, 2, 3, 4], distinct_values=1234
        )
        assert histogram.distinct_estimate() == 1234

    def test_untracked_histogram_falls_back_to_boundaries(self):
        histogram = EquiDepthHistogram([1, 2, 3, 4])
        assert histogram.distinct_estimate() == 4

    def test_table_stats_pin_true_ndv(self):
        rows = [(i, i % 997) for i in range(5000)]
        stats = compute_table_stats(rows, ["k", "v"])
        column = stats.column("v")
        assert column.distinct_count == 997
        assert column.histogram is not None
        assert column.histogram.distinct_estimate() == 997

    def test_histogram_and_hll_agree_on_small_inputs(self):
        """Both NDV paths the estimator can take must tell the same
        story where exactness is cheap: small inputs."""
        from repro.stats.sketches import HyperLogLog

        for ndv in (2, 10, 64, 300):
            values = [i % ndv for i in range(1000)]
            histogram = EquiDepthHistogram.build(values)
            hll = HyperLogLog()
            for v in values:
                hll.add(v)
            if histogram is not None:
                assert histogram.distinct_estimate() == ndv
            assert round(hll.estimate()) == pytest.approx(ndv, rel=0.02)
