"""Unit tests for the cardinality feedback registry (repro.adaptive)."""

import pytest

from repro.adaptive.feedback import FeedbackRegistry
from repro.adaptive.signature import operator_signature
from repro.common.config import SystemConfig
from repro.obs.metrics import get_registry
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import LogicalFilter, LogicalTableScan
from repro.stats.estimator import Estimator

from helpers import make_company_cluster, make_company_store

pytestmark = pytest.mark.adaptive


@pytest.fixture(scope="module")
def store():
    return make_company_store()


def scan(store, table):
    schema = store.table(table).schema
    return LogicalTableScan(table, table, schema.column_names)


class TestRecordLookup:
    def test_latest_observation_wins(self):
        registry = FeedbackRegistry()
        registry.record("sig", 100.0)
        registry.record("sig", 250.0)
        assert registry.lookup("sig") == 250.0
        assert registry._entries["sig"].observations == 2

    def test_negative_rows_clamped(self):
        registry = FeedbackRegistry()
        registry.record("sig", -5)
        assert registry.lookup("sig") == 0.0

    def test_row_override_via_signature(self, store):
        registry = FeedbackRegistry(store)
        node = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(1), Literal(3))
        )
        signature = operator_signature(node, store)
        registry.record(signature, 77.0)
        assert registry.row_override(node) == 77.0
        # a different literal is a different operator — no override
        other = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(1), Literal(4))
        )
        assert registry.row_override(other) is None

    def test_clear(self):
        registry = FeedbackRegistry()
        registry.record("sig", 1.0)
        registry.clear()
        assert len(registry) == 0


class TestHarvest:
    def test_harvest_records_scans_and_joins(self):
        cluster = make_company_cluster(
            SystemConfig.ic_plus(4, cardinality_feedback=True)
        )
        cluster.sql(
            "select e.name, s.amount from emp e, sales s "
            "where e.emp_id = s.emp_id"
        )
        feedback = cluster.adaptive.feedback
        sigs = list(feedback._entries)
        assert any(s.startswith("S(emp/e)") for s in sigs)
        assert any(s.startswith("J(inner") for s in sigs)
        # join keys descend across the fragment seam to real children,
        # never to an opaque receiver digest
        assert not any("PReceiver" in s for s in sigs)
        assert get_registry().counter("adaptive.feedback_observations") > 0

    def test_broadcast_actuals_are_not_harvested(self):
        """dept is replicated: every site scans a full copy, so the summed
        actual over-counts and must not be recorded."""
        cluster = make_company_cluster(
            SystemConfig.ic_plus(4, cardinality_feedback=True)
        )
        cluster.sql(
            "select e.name, d.dept_name from emp e, dept d "
            "where e.dept_id = d.dept_id"
        )
        feedback = cluster.adaptive.feedback
        for signature, entry in feedback._entries.items():
            if signature == "S(dept/d)":
                pytest.fail(f"broadcast scan harvested: {entry}")

    def test_estimator_consumes_override(self, store):
        registry = FeedbackRegistry(store)
        node = LogicalFilter(
            scan(store, "emp"), BinaryOp("=", ColRef(1), Literal(3))
        )
        registry.record(operator_signature(node, store), 90.0)
        plain = Estimator(store, fixed_join_estimation=True)
        fed = Estimator(store, fixed_join_estimation=True, feedback=registry)
        assert plain.row_count(node) != 90.0
        assert fed.row_count(node) == 90.0
        assert get_registry().counter("adaptive.feedback_overrides") == 1.0
