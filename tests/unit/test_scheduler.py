"""Unit tests for the simulated cluster scheduler."""

import pytest

from repro.cluster.scheduler import (
    SimTask,
    TaskGraph,
    WorkloadSimulator,
    simulate_makespan,
)
from repro.common.constants import CORE_UNITS_PER_SECOND as RATE
from repro.common.errors import ExecutionError


def graph_of(*tasks):
    graph = TaskGraph()
    for site, units, deps in tasks:
        graph.add(site, units, deps)
    return graph


class TestTaskGraph:
    def test_total_units(self):
        graph = graph_of((0, 100, ()), (1, 200, ()))
        assert graph.total_units == 300

    def test_critical_path_follows_dependencies(self):
        graph = TaskGraph()
        a = graph.add(0, 100)
        b = graph.add(0, 50, [a])
        graph.add(1, 120)
        assert graph.critical_path_units() == 150

    def test_task_duration(self):
        task = SimTask(0, 0, RATE)
        assert task.duration == 1.0


class TestMakespan:
    def test_single_task(self):
        assert simulate_makespan(graph_of((0, RATE, ())), 1, 1) == pytest.approx(1.0)

    def test_parallel_tasks_on_different_sites(self):
        graph = graph_of((0, RATE, ()), (1, RATE, ()))
        assert simulate_makespan(graph, 2, 1) == pytest.approx(1.0)

    def test_serialised_on_one_core(self):
        graph = graph_of((0, RATE, ()), (0, RATE, ()))
        assert simulate_makespan(graph, 1, 1) == pytest.approx(2.0)

    def test_two_cores_run_in_parallel(self):
        graph = graph_of((0, RATE, ()), (0, RATE, ()))
        assert simulate_makespan(graph, 1, 2) == pytest.approx(1.0)

    def test_dependency_forces_sequence(self):
        graph = TaskGraph()
        a = graph.add(0, RATE)
        graph.add(1, RATE, [a])
        assert simulate_makespan(graph, 2, 4) == pytest.approx(2.0)

    def test_makespan_at_least_critical_path(self):
        graph = TaskGraph()
        prev = []
        for i in range(5):
            prev = [graph.add(i % 2, RATE / 2, prev)]
        makespan = simulate_makespan(graph, 2, 2)
        assert makespan >= graph.critical_path_units() / RATE - 1e-9

    def test_empty_graph(self):
        assert simulate_makespan(TaskGraph(), 2, 2) == 0.0

    def test_sites_wrap_modulo(self):
        """Tasks built for an 8-site plan still run on a 4-site cluster."""
        graph = graph_of((7, RATE, ()),)
        assert simulate_makespan(graph, 4, 1) == pytest.approx(1.0)


class TestWorkloadSimulator:
    def test_latency_includes_queueing(self):
        sim = WorkloadSimulator(1, 1)
        graph = graph_of((0, RATE, ()))
        sim.submit(graph, at=0.0, tag=0)
        sim.submit(graph, at=0.0, tag=1)
        sim.run()
        first = sim.latency(0)
        second = sim.latency(1)
        assert {round(first, 3), round(second, 3)} == {1.0, 2.0}

    def test_release_time_delays_start(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(graph_of((0, RATE, ())), at=5.0, tag=0)
        sim.run()
        assert sim.completion_time(0) == pytest.approx(6.0)

    def test_on_complete_callback_can_submit_more(self):
        sim = WorkloadSimulator(1, 1)
        graph = graph_of((0, RATE, ()))
        submitted = []

        def resubmit(tag, now):
            if tag < 2:
                new_tag = tag + 10
                submitted.append(new_tag)
                sim.submit(graph, at=now, tag=new_tag)

        sim.on_complete = resubmit
        sim.submit(graph, at=0.0, tag=0)
        sim.run()
        assert submitted == [10]
        assert sim.completion_time(10) == pytest.approx(2.0)

    def test_duplicate_open_tag_rejected(self):
        sim = WorkloadSimulator(1, 1)
        graph = graph_of((0, RATE, ()))
        sim.submit(graph, at=0.0, tag=0)
        with pytest.raises(ExecutionError):
            sim.submit(graph, at=0.0, tag=0)

    def test_unknown_completion_raises(self):
        with pytest.raises(ExecutionError):
            WorkloadSimulator(1, 1).completion_time(9)

    def test_invalid_cluster_shape_rejected(self):
        with pytest.raises(ExecutionError):
            WorkloadSimulator(0, 1)

    def test_contention_raises_latency(self):
        """More concurrent clients on the same cores -> higher latency."""
        def run(clients):
            sim = WorkloadSimulator(1, 2)
            graph = graph_of((0, RATE, ()))
            for tag in range(clients):
                sim.submit(graph, at=0.0, tag=tag)
            sim.run()
            return sum(sim.latency(t) for t in range(clients)) / clients

        assert run(8) > run(2)

    def test_empty_graph_completes_immediately(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(TaskGraph(), at=3.0, tag=0)
        assert sim.completion_time(0) == 3.0


class TestTagDiagnostics:
    """Clear errors for unknown/unfinished tags and the queue-wait split."""

    def test_completion_time_unknown_tag(self):
        sim = WorkloadSimulator(1, 1)
        with pytest.raises(ExecutionError, match="unknown tag 42"):
            sim.completion_time(42)

    def test_latency_unknown_tag(self):
        sim = WorkloadSimulator(1, 1)
        with pytest.raises(ExecutionError, match="unknown tag 7"):
            sim.latency(7)

    def test_completion_time_before_run_finishes(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(graph_of((0, RATE, ())), at=0.0, tag=0)
        with pytest.raises(ExecutionError, match="has not completed"):
            sim.completion_time(0)

    def test_queue_wait_unknown_tag(self):
        sim = WorkloadSimulator(1, 1)
        with pytest.raises(ExecutionError, match="unknown tag 5"):
            sim.queue_wait(5)

    def test_queue_wait_not_started(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(graph_of((0, RATE, ())), at=3.0, tag=0)
        with pytest.raises(ExecutionError, match="has not started"):
            sim.queue_wait(0)

    def test_queue_wait_zero_on_idle_cluster(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(graph_of((0, RATE, ())), at=0.0, tag=0)
        sim.run()
        assert sim.queue_wait(0) == 0.0

    def test_queue_wait_measures_core_contention(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(graph_of((0, RATE, ())), at=0.0, tag=0)
        sim.submit(graph_of((0, RATE, ())), at=0.0, tag=1)
        sim.run()
        # One core: the second query waits a full second for the first.
        assert sim.queue_wait(0) == pytest.approx(0.0)
        assert sim.queue_wait(1) == pytest.approx(1.0)
        assert sim.latency(1) == pytest.approx(
            sim.queue_wait(1) + 1.0
        )

    def test_queue_wait_of_empty_graph_is_zero(self):
        sim = WorkloadSimulator(1, 1)
        sim.submit(TaskGraph(), at=2.0, tag=0)
        assert sim.queue_wait(0) == 0.0


class TestScheduledEvents:
    def test_event_fires_at_its_time(self):
        sim = WorkloadSimulator(1, 1)
        fired = []
        sim.schedule_event(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_event_may_submit_work(self):
        sim = WorkloadSimulator(1, 1)
        sim.schedule_event(
            2.0, lambda: sim.submit(graph_of((0, RATE, ())), at=2.0, tag=9)
        )
        sim.run()
        assert sim.completion_time(9) == pytest.approx(3.0)
        assert sim.queue_wait(9) == 0.0

    def test_events_interleave_with_completions_in_time_order(self):
        sim = WorkloadSimulator(1, 1)
        order = []
        sim.on_complete = lambda tag, now: order.append(("done", tag, now))
        sim.submit(graph_of((0, RATE, ())), at=0.0, tag=0)
        sim.schedule_event(0.5, lambda: order.append(("event", None, sim.now)))
        sim.run()
        assert order == [("event", None, 0.5), ("done", 0, 1.0)]

    def test_negative_event_time_rejected(self):
        sim = WorkloadSimulator(1, 1)
        with pytest.raises(ExecutionError):
            sim.schedule_event(-0.1, lambda: None)

    def test_event_chain(self):
        sim = WorkloadSimulator(1, 1)
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule_event(3.0, lambda: seen.append(sim.now))

        sim.schedule_event(1.0, first)
        sim.run()
        assert seen == [1.0, 3.0]

    def test_idle_jump_does_not_skip_events(self):
        sim = WorkloadSimulator(1, 1)
        seen = []
        # Task released at t=5; an event at t=1 must fire first with the
        # clock at 1.0, not after a jump to 5.
        sim.submit(graph_of((0, RATE, ())), at=5.0, tag=0)
        sim.schedule_event(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]
        assert sim.completion_time(0) == pytest.approx(6.0)
