"""Unit tests for the sketchbench bench module and artefact schema."""

import pytest

from repro.bench.sketchbench import (
    SKETCHBENCH_SCHEMA,
    SMOKE_BENCHES,
    SMOKE_QUERY_IDS,
    run_sketchbench,
    validate_sketchbench_artefact,
)

pytestmark = pytest.mark.sketch


@pytest.fixture(scope="module")
def report():
    # The smoke cell: one system, the two skewed benches, three queries.
    return run_sketchbench(
        systems=("IC+",), benches=SMOKE_BENCHES, scale_factor=0.05,
        sites=4, seed=7, query_ids=SMOKE_QUERY_IDS,
    )


class TestRunSketchbench:
    def test_artefact_is_valid(self, report):
        assert report.validate() == []

    def test_differentially_clean(self, report):
        assert not report.skipped
        for q in report.queries:
            assert q.results_match and q.oracle_match

    def test_tpch_p95_join_strictly_improves(self, report):
        assert report.tpch_p95_join_improved
        assert (
            report.tpch_join_p95_sketches < report.tpch_join_p95_histograms
        )

    def test_plans_actually_flipped(self, report):
        assert report.total_plan_flips >= 1

    def test_sketch_counters_sampled(self, report):
        # Both cells built table sketches and harvested at least one seam.
        for cell in report.cells:
            assert cell.table_builds >= 1
            assert cell.seam_refreshes >= 1

    def test_text_and_dict_round_trip(self, report):
        text = report.to_text()
        assert "skewed-TPC-H join q-error p95" in text
        obj = report.to_dict()
        assert obj["schema"] == SKETCHBENCH_SCHEMA
        assert obj["benches"] == list(SMOKE_BENCHES)
        assert len(obj["cells"]) == 2

    def test_determinism(self, report):
        again = run_sketchbench(
            systems=("IC+",), benches=SMOKE_BENCHES, scale_factor=0.05,
            sites=4, seed=7, query_ids=SMOKE_QUERY_IDS,
        )
        assert again.to_dict() == report.to_dict()


class TestValidateArtefact:
    @staticmethod
    def _valid():
        return {
            "schema": SKETCHBENCH_SCHEMA,
            "systems": ["IC+"],
            "benches": ["tpch"],
            "sites": 4,
            "scale_factor": 0.05,
            "seed": 7,
            "total_plan_flips": 1,
            "tpch_join_p95_histograms": 34.0,
            "tpch_join_p95_sketches": 1.0,
            "tpch_p95_join_improved": True,
            "queries": [
                {
                    "bench": "tpch",
                    "query": "T1",
                    "system": "IC+",
                    "rows": 10,
                    "plan_flip": True,
                    "histogram_max_q_error": 34.0,
                    "sketch_max_q_error": 1.0,
                    "results_match": True,
                    "oracle_match": True,
                }
            ],
            "cells": [
                {
                    "bench": "tpch",
                    "system": "IC+",
                    "queries": 1,
                    "plan_flips": 1,
                    "histogram_q_errors": {
                        "all": {"count": 5, "p50": 2.0, "p95": 34.0, "max": 34.0},
                        "join": {"count": 1, "p50": 34.0, "p95": 34.0, "max": 34.0},
                    },
                    "sketch_q_errors": {
                        "all": {"count": 5, "p50": 1.0, "p95": 1.0, "max": 1.0},
                        "join": {"count": 1, "p50": 1.0, "p95": 1.0, "max": 1.0},
                    },
                    "table_builds": 8,
                    "seam_refreshes": 1,
                    "operator_hits": 0,
                }
            ],
            "skipped": {},
        }

    def test_accepts_valid(self):
        assert validate_sketchbench_artefact(self._valid()) == []

    def test_rejects_non_dict(self):
        assert validate_sketchbench_artefact([]) != []

    def test_rejects_missing_top_key(self):
        obj = self._valid()
        del obj["tpch_p95_join_improved"]
        problems = validate_sketchbench_artefact(obj)
        assert any("tpch_p95_join_improved" in p for p in problems)

    def test_rejects_wrong_schema(self):
        obj = self._valid()
        obj["schema"] = "repro-sketchbench/v0"
        assert validate_sketchbench_artefact(obj)

    def test_rejects_row_mismatch(self):
        obj = self._valid()
        obj["queries"][0]["results_match"] = False
        problems = validate_sketchbench_artefact(obj)
        assert any("differ from histogram rows" in p for p in problems)

    def test_rejects_oracle_mismatch(self):
        obj = self._valid()
        obj["queries"][0]["oracle_match"] = False
        problems = validate_sketchbench_artefact(obj)
        assert any("reference executor" in p for p in problems)

    def test_rejects_sub_one_q_error(self):
        obj = self._valid()
        obj["queries"][0]["sketch_max_q_error"] = 0.5
        assert validate_sketchbench_artefact(obj)

    def test_rejects_zero_plan_flips(self):
        obj = self._valid()
        obj["total_plan_flips"] = 0
        problems = validate_sketchbench_artefact(obj)
        assert any("never changed a plan" in p for p in problems)

    def test_rejects_unimproved_tpch_cell(self):
        obj = self._valid()
        obj["tpch_p95_join_improved"] = False
        problems = validate_sketchbench_artefact(obj)
        assert any("strictly improve" in p for p in problems)

    def test_tpch_improvement_not_required_without_tpch_cell(self):
        obj = self._valid()
        obj["tpch_p95_join_improved"] = False
        for row in obj["queries"]:
            row["bench"] = "company"
        for cell in obj["cells"]:
            cell["bench"] = "company"
        assert validate_sketchbench_artefact(obj) == []

    def test_rejects_missing_distribution_stat(self):
        obj = self._valid()
        del obj["cells"][0]["sketch_q_errors"]["join"]["p95"]
        problems = validate_sketchbench_artefact(obj)
        assert any("p95" in p for p in problems)

    def test_rejects_empty_queries_and_cells(self):
        obj = self._valid()
        obj["queries"] = []
        assert validate_sketchbench_artefact(obj)
        obj = self._valid()
        obj["cells"] = []
        assert validate_sketchbench_artefact(obj)
