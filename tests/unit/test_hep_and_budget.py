"""Unit tests for the HepPlanner engine and the planning budget."""

import pytest

from repro.common.errors import PlannerError, PlanningTimeoutError
from repro.planner.budget import PlanningBudget
from repro.planner.hep import HepPlanner, MAX_PASSES
from repro.planner.rules import FilterMergeRule, Rule
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import LogicalFilter, LogicalTableScan

SCAN = LogicalTableScan("t", "t", ["a", "b"])


def lit(i, v):
    return BinaryOp("=", ColRef(i), Literal(v))


class TestBudget:
    def test_charges_accumulate(self):
        budget = PlanningBudget(10)
        budget.charge(4)
        budget.charge(6)
        assert budget.spent == 10
        assert budget.remaining == 0

    def test_exceeding_raises_with_details(self):
        budget = PlanningBudget(5)
        with pytest.raises(PlanningTimeoutError) as info:
            budget.charge(6)
        assert info.value.budget == 5
        assert info.value.spent == 6

    def test_remaining_never_negative(self):
        budget = PlanningBudget(3)
        try:
            budget.charge(10)
        except PlanningTimeoutError:
            pass
        assert budget.remaining == 0

    def test_remaining_floors_at_zero_after_overrun(self):
        """The charge that raises leaves spent > limit; every later read
        of ``remaining`` must still report 0, not a negative count."""
        budget = PlanningBudget(5)
        with pytest.raises(PlanningTimeoutError):
            budget.charge(100)
        assert budget.spent == 100
        assert budget.remaining == 0

    def test_negative_charge_rejected(self):
        """Regression: a negative charge could silently refund budget and
        mask an overrun; it now fails fast."""
        budget = PlanningBudget(10)
        with pytest.raises(ValueError):
            budget.charge(-1)
        assert budget.spent == 0


class TestHepPlanner:
    def test_reaches_fixpoint(self):
        tree = LogicalFilter(LogicalFilter(SCAN, lit(0, 1)), lit(1, 2))
        result = HepPlanner([FilterMergeRule()]).optimize(tree)
        assert isinstance(result, LogicalFilter)
        assert isinstance(result.input, LogicalTableScan)

    def test_no_matching_rule_is_identity(self):
        tree = LogicalFilter(SCAN, lit(0, 1))
        result = HepPlanner([FilterMergeRule()]).optimize(tree)
        assert result.digest() == tree.digest()

    def test_rules_apply_in_nested_positions(self):
        inner = LogicalFilter(LogicalFilter(SCAN, lit(0, 1)), lit(1, 2))
        # Wrap so the rewrite happens below the root.
        from repro.rel.logical import LogicalProject
        from repro.rel.expr import ColRef as C

        tree = LogicalProject(inner, [C(0)], ["a"])
        result = HepPlanner([FilterMergeRule()]).optimize(tree)
        assert isinstance(result.input.input, LogicalTableScan)

    def test_budget_charged_per_attempt(self):
        budget = PlanningBudget(10 ** 6)
        tree = LogicalFilter(LogicalFilter(SCAN, lit(0, 1)), lit(1, 2))
        HepPlanner([FilterMergeRule()], budget).optimize(tree)
        assert budget.spent > 0

    def test_non_terminating_rule_detected(self):
        class FlipFlop(Rule):
            """Pathological rule that alternates two conditions forever."""

            name = "FlipFlop"

            def apply(self, node):
                if not isinstance(node, LogicalFilter):
                    return None
                new_value = 1 if node.condition.right.value == 2 else 2
                return LogicalFilter(node.input, lit(0, new_value))

        tree = LogicalFilter(SCAN, lit(0, 1))
        with pytest.raises(PlannerError):
            HepPlanner([FlipFlop()]).optimize(tree)

    def test_max_passes_guard_is_generous(self):
        assert MAX_PASSES >= 32
