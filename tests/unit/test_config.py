"""Unit tests for the system-variant configuration presets."""

import dataclasses

import pytest

from repro.common.config import PRESETS, SystemConfig


class TestPresets:
    def test_ic_is_all_stock(self):
        config = SystemConfig.ic()
        assert config.name == "IC"
        assert not config.fixed_join_estimation
        assert not config.filter_correlate_rule
        assert not config.exchange_penalty_fix
        assert not config.normalized_cost_units
        assert not config.distribution_factor
        assert not config.two_phase_optimization
        assert not config.broadcast_join_mapping
        assert not config.hash_join
        assert not config.join_condition_simplification
        assert config.variant_fragments == 1

    def test_ic_plus_enables_sections_4_and_5(self):
        config = SystemConfig.ic_plus()
        assert config.name == "IC+"
        assert config.fixed_join_estimation
        assert config.filter_correlate_rule
        assert config.exchange_penalty_fix
        assert config.normalized_cost_units
        assert config.distribution_factor
        assert config.two_phase_optimization
        assert config.broadcast_join_mapping
        assert config.hash_join
        assert config.join_condition_simplification
        assert config.variant_fragments == 1

    def test_ic_plus_m_adds_dual_threading(self):
        config = SystemConfig.ic_plus_m()
        assert config.name == "IC+M"
        assert config.variant_fragments == 2
        assert config.is_multithreaded
        assert config.hash_join  # inherits everything from IC+

    def test_site_count_parameter(self):
        assert SystemConfig.ic(sites=8).sites == 8
        assert SystemConfig.ic_plus_m(sites=8, threads=3).variant_fragments == 3

    def test_presets_registry(self):
        assert set(PRESETS) == {"IC", "IC+", "IC+M"}
        assert PRESETS["IC+"](4).name == "IC+"

    def test_with_override(self):
        config = SystemConfig.ic_plus().with_(hash_join=False)
        assert not config.hash_join
        assert config.fixed_join_estimation  # others untouched

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig.ic().sites = 10

    def test_q20_defect_present_in_all_presets(self):
        """The paper leaves the Q20 bug unresolved in every variant."""
        for maker in PRESETS.values():
            assert not maker(4).q20_defect_fixed
