"""Unit tests for Algorithm 3 (variant-fragment classification)."""

import pytest

from repro.exec.fragments import Fragment, PhysReceiver, SenderSpec, fragment_plan
from repro.exec.physical import (
    AggPhase,
    PhysExchange,
    PhysFilter,
    PhysHashAggregate,
    PhysHashJoin,
    PhysProject,
    PhysTableScan,
)
from repro.exec.variants import DUPLICATE, SOURCE, SPLIT, plan_variants
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import AggCall, AggFunc, JoinType
from repro.rel.traits import Distribution


def scan(name="t", rows=1000.0, sites=4):
    node = PhysTableScan(
        name, name, [f"{name}.a", f"{name}.b"], Distribution.hash((0,)), sites
    )
    node.rows_est = rows
    return node


def fragment(root, is_root=False):
    sender = None if is_root else SenderSpec(0, Distribution.single())
    return Fragment(fragment_id=0, root=root, sender=sender)


class TestEligibility:
    def test_root_fragment_is_skipped(self):
        assert plan_variants(fragment(scan(), is_root=True)) is None

    def test_plain_scan_fragment_is_eligible(self):
        assert plan_variants(fragment(scan())) is not None

    def test_single_phase_aggregate_blocks_variants(self):
        agg = PhysHashAggregate(
            scan(), (0,), (AggCall(AggFunc.COUNT, None),),
            AggPhase.SINGLE, Distribution.single(),
        )
        assert plan_variants(fragment(agg)) is None

    def test_reduce_aggregate_blocks_variants(self):
        agg = PhysHashAggregate(
            scan(), (0,), (AggCall(AggFunc.COUNT, None),),
            AggPhase.REDUCE, Distribution.single(),
        )
        assert plan_variants(fragment(agg)) is None

    def test_map_aggregate_is_allowed(self):
        """MAP phases emit mergeable partials; only reductions are pinned."""
        agg = PhysHashAggregate(
            scan(), (0,), (AggCall(AggFunc.SUM, ColRef(1)),),
            AggPhase.MAP, Distribution.hash((0,)),
        )
        plan = plan_variants(fragment(agg))
        assert plan is not None
        assert plan.scaling[id(agg)] == SPLIT


class TestClassification:
    def test_sources_read_fully(self):
        node = PhysFilter(scan(), BinaryOp("=", ColRef(0), Literal(1)))
        plan = plan_variants(fragment(node))
        assert plan.scaling[id(node.input)] == SOURCE
        assert plan.scaling[id(node)] == SPLIT

    def test_inner_join_splits_heavier_side(self):
        big = scan("big", rows=10_000)
        small = scan("small", rows=10)
        join = PhysHashJoin(
            small, big, [(0, 0)], None, JoinType.INNER, Distribution.hash((0,))
        )
        join.rows_est = 10_000
        plan = plan_variants(fragment(join))
        # The heavier (right) side continues in split mode: operators above
        # the small side would be duplicated.
        above_small = PhysFilter(small, BinaryOp("=", ColRef(0), Literal(1)))
        join2 = PhysHashJoin(
            above_small, big, [(0, 0)], None, JoinType.INNER,
            Distribution.hash((0,)),
        )
        plan2 = plan_variants(fragment(join2))
        assert plan2.scaling[id(above_small)] == DUPLICATE

    def test_semi_join_always_splits_left(self):
        """A split right side would emit the same left row from several
        variants — semi/anti joins must duplicate the right input."""
        big = scan("big", rows=10_000)
        left_filter = PhysFilter(
            scan("probe", rows=10), BinaryOp("=", ColRef(0), Literal(1))
        )
        join = PhysHashJoin(
            left_filter, big, [(0, 0)], None, JoinType.SEMI,
            Distribution.hash((0,)),
        )
        plan = plan_variants(fragment(join))
        assert plan.scaling[id(left_filter)] == SPLIT

    def test_anti_join_duplicates_right(self):
        right_filter = PhysFilter(
            scan("r", rows=50_000), BinaryOp("=", ColRef(0), Literal(1))
        )
        join = PhysHashJoin(
            scan("l"), right_filter, [(0, 0)], None, JoinType.ANTI,
            Distribution.hash((0,)),
        )
        plan = plan_variants(fragment(join))
        assert plan.scaling[id(right_filter)] == DUPLICATE

    def test_receiver_is_a_source(self):
        receiver = PhysReceiver(0, ["x"], Distribution.single())
        receiver.rows_est = 10
        node = PhysProject(receiver, [ColRef(0)], ["x"])
        plan = plan_variants(fragment(node))
        assert plan.scaling[id(receiver)] == SOURCE


class TestFactors:
    def test_split_factor(self):
        node = PhysFilter(scan(), BinaryOp("=", ColRef(0), Literal(1)))
        plan = plan_variants(fragment(node))
        assert plan.factor(node, variants=2) == pytest.approx(0.5)

    def test_source_factor_is_full(self):
        inner = scan()
        node = PhysFilter(inner, BinaryOp("=", ColRef(0), Literal(1)))
        plan = plan_variants(fragment(node))
        assert plan.factor(inner, variants=2) == 1.0

    def test_duplicate_factor_is_full(self):
        dup = PhysFilter(scan("s", rows=1), BinaryOp("=", ColRef(0), Literal(1)))
        join = PhysHashJoin(
            dup, scan("big", rows=9999), [(0, 0)], None, JoinType.INNER,
            Distribution.hash((0,)),
        )
        plan = plan_variants(fragment(join))
        assert plan.factor(dup, variants=4) == 1.0
