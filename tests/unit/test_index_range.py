"""Unit tests for index range pushdown (sargable predicates)."""

import pytest

from repro.common.config import SystemConfig
from repro.cost.model import CostModel
from repro.exec.engine import ExecutionEngine
from repro.exec.physical import PhysFilter, PhysIndexScan, walk_physical
from repro.planner.budget import PlanningBudget
from repro.planner.physical import PhysicalPlanner, Requirement, _sargable_bound
from repro.planner.volcano import QueryPlanner
from repro.rel.expr import BinaryOp, ColRef, Literal, make_conjunction
from repro.rel.logical import LogicalFilter, LogicalTableScan
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse
from repro.stats.estimator import Estimator

from helpers import make_company_store, naive_execute, normalise


@pytest.fixture(scope="module")
def store():
    store = make_company_store()
    store.create_index("emp", "emp_salary", ["salary"])
    return store


def planner_for(store, config=None):
    config = config or SystemConfig.ic_plus()
    estimator = Estimator(store, True)
    return PhysicalPlanner(
        store, config, estimator, CostModel(config), PlanningBudget(10**7)
    )


def scan(store, table="emp"):
    schema = store.table(table).schema
    return LogicalTableScan(table, table, schema.column_names)


class TestSargableDetection:
    def test_greater_equal(self):
        bound = _sargable_bound(BinaryOp(">=", ColRef(3), Literal(5.0)))
        assert bound == (3, "lo", 5.0, True)

    def test_strict_less(self):
        bound = _sargable_bound(BinaryOp("<", ColRef(3), Literal(9.0)))
        assert bound == (3, "hi", 9.0, False)

    def test_mirrored_literal_on_left(self):
        bound = _sargable_bound(BinaryOp(">", Literal(9.0), ColRef(3)))
        assert bound == (3, "hi", 9.0, False)

    def test_equality(self):
        bound = _sargable_bound(BinaryOp("=", ColRef(0), Literal(7)))
        assert bound == (0, "eq", 7, True)

    def test_column_to_column_is_not_sargable(self):
        assert _sargable_bound(BinaryOp("<", ColRef(0), ColRef(1))) is None

    def test_null_literal_is_not_sargable(self):
        assert _sargable_bound(BinaryOp("=", ColRef(0), Literal(None))) is None


class TestPlanShape:
    def test_selective_range_uses_index(self, store):
        node = LogicalFilter(
            scan(store),
            make_conjunction(
                [
                    BinaryOp(">=", ColRef(3), Literal(190_000.0)),
                    BinaryOp("<", ColRef(3), Literal(195_000.0)),
                ]
            ),
        )
        plan = planner_for(store).implement(node, Requirement.any())
        scans = [
            n for n in walk_physical(plan) if isinstance(n, PhysIndexScan)
        ]
        assert scans and scans[0].is_range_scan
        assert scans[0].low == 190_000.0
        assert not scans[0].high_inclusive

    def test_residual_conjuncts_stay_in_filter(self, store):
        node = LogicalFilter(
            scan(store),
            make_conjunction(
                [
                    BinaryOp(">=", ColRef(3), Literal(190_000.0)),
                    BinaryOp("=", ColRef(1), Literal(3)),
                ]
            ),
        )
        plan = planner_for(store).implement(node, Requirement.any())
        if any(isinstance(n, PhysIndexScan) for n in walk_physical(plan)):
            filters = [
                n for n in walk_physical(plan) if isinstance(n, PhysFilter)
            ]
            assert filters, "non-indexed conjunct must remain as a filter"

    def test_unindexed_column_falls_back_to_scan(self, store):
        node = LogicalFilter(
            scan(store), BinaryOp(">=", ColRef(4), Literal("2020-01-01"))
        )
        plan = planner_for(store).implement(node, Requirement.any())
        scans = [
            n for n in walk_physical(plan)
            if isinstance(n, PhysIndexScan) and n.is_range_scan
        ]
        assert not scans  # hired has no index in this fixture


class TestCorrectness:
    @pytest.mark.parametrize(
        "sql",
        [
            "select emp_id from emp where salary >= 190000",
            "select emp_id from emp where salary > 100000 and salary < 120000",
            "select emp_id from emp where emp_id = 17",
            "select name from emp where salary between 50000 and 60000 "
            "and dept_id = 2",
            "select e.name from emp e, dept d where e.dept_id = d.dept_id "
            "and e.salary < 40000",
        ],
    )
    def test_range_scan_results_match_oracle(self, store, sql):
        logical = SqlToRelConverter(store.catalog).convert(parse(sql))
        expected = normalise(naive_execute(logical, store))
        config = SystemConfig.ic_plus()
        plan = QueryPlanner(store, config).plan(logical)
        result = ExecutionEngine(store, config).execute(plan)
        assert normalise(result.rows) == expected

    def test_range_scan_reads_fewer_rows(self, store):
        """The pruned scan must charge fewer work units than a full one."""
        config = SystemConfig.ic_plus()
        narrow = "select emp_id from emp where salary >= 199000"
        logical = SqlToRelConverter(store.catalog).convert(parse(narrow))
        plan = QueryPlanner(store, config).plan(logical)
        pruned = ExecutionEngine(store, config).execute(plan)
        full_sql = "select emp_id from emp where dept_id >= 0"
        logical_full = SqlToRelConverter(store.catalog).convert(parse(full_sql))
        plan_full = QueryPlanner(store, config).plan(logical_full)
        full = ExecutionEngine(store, config).execute(plan_full)
        assert pruned.total_units < full.total_units
