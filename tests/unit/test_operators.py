"""Unit tests for the execution operators (one site, controlled inputs)."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.errors import ExecutionTimeoutError
from repro.exec.fragments import PhysReceiver
from repro.exec.operators import ExecContext, execute_node, sort_rows
from repro.exec.physical import (
    AggPhase,
    PhysFilter,
    PhysHashAggregate,
    PhysHashJoin,
    PhysIndexScan,
    PhysLimit,
    PhysMergeJoin,
    PhysNestedLoopJoin,
    PhysProject,
    PhysSort,
    PhysSortAggregate,
    PhysTableScan,
    PhysValues,
)
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import AggCall, AggFunc, JoinType
from repro.rel.traits import Collation, Distribution
from repro.storage.store import DataStore

I = ColumnType.INTEGER
D = ColumnType.DOUBLE


@pytest.fixture
def store():
    store = DataStore(site_count=2, partitions_per_table=4)
    store.create_table(
        TableSchema(
            "nums",
            [Column("id", I), Column("grp", I), Column("val", D)],
            ["id"],
        ),
        [(i, i % 3, float(i)) for i in range(20)],
    )
    store.create_index("nums", "nums_val", ["val"])
    return store


@pytest.fixture
def ctx(store):
    return ExecContext(store, limit_units=1e9)


def values_node(rows, names=("a", "b")):
    return PhysValues(rows, names)


def all_rows(node, ctx, sites=(0, 1)):
    rows = []
    for site in sites:
        rows.extend(execute_node(node, site, ctx))
    return rows


class TestScans:
    def test_table_scan_covers_all_partitions(self, store, ctx):
        scan = PhysTableScan(
            "nums", "n", ["n.id", "n.grp", "n.val"], Distribution.hash((0,)), 2
        )
        rows = all_rows(scan, ctx)
        assert sorted(r[0] for r in rows) == list(range(20))

    def test_index_scan_is_sorted_per_site(self, store, ctx):
        scan = PhysIndexScan(
            "nums", "n", ["n.id", "n.grp", "n.val"], "nums_val",
            Distribution.hash((0,)), Collation(((2, True),)), 2,
        )
        for site in (0, 1):
            values = [r[2] for r in execute_node(scan, site, ctx)]
            assert values == sorted(values)

    def test_work_units_are_charged(self, store, ctx):
        scan = PhysTableScan(
            "nums", "n", ["n.id", "n.grp", "n.val"], Distribution.hash((0,)), 2
        )
        all_rows(scan, ctx)
        assert ctx.total_units > 0


class TestReceiver:
    def test_concatenates_streams(self, ctx):
        receiver = PhysReceiver(7, ["x"], Distribution.single())
        ctx.deliver(7, 0, [(1,), (2,)])
        ctx.deliver(7, 0, [(3,)])
        assert execute_node(receiver, 0, ctx) == [(1,), (2,), (3,)]

    def test_merging_receiver_merges_sorted_streams(self, ctx):
        receiver = PhysReceiver(
            8, ["x"], Distribution.single(), Collation(((0, True),))
        )
        ctx.deliver(8, 0, [(1,), (4,)])
        ctx.deliver(8, 0, [(2,), (3,)])
        assert execute_node(receiver, 0, ctx) == [(1,), (2,), (3,), (4,)]

    def test_empty_receiver(self, ctx):
        receiver = PhysReceiver(9, ["x"], Distribution.single())
        assert execute_node(receiver, 0, ctx) == []


class TestRowOperators:
    def test_filter(self, ctx):
        node = PhysFilter(
            values_node([(1, 1), (2, 2), (3, 3)]),
            BinaryOp(">", ColRef(0), Literal(1)),
        )
        assert execute_node(node, 0, ctx) == [(2, 2), (3, 3)]

    def test_project(self, ctx):
        node = PhysProject(
            values_node([(1, 2)]),
            [BinaryOp("+", ColRef(0), ColRef(1)), Literal("k")],
            ["s", "k"],
        )
        assert execute_node(node, 0, ctx) == [(3, "k")]

    def test_limit(self, ctx):
        node = PhysLimit(values_node([(i, i) for i in range(10)]), 3)
        assert len(execute_node(node, 0, ctx)) == 3

    def test_sort_with_fetch(self, ctx):
        node = PhysSort(
            values_node([(3, 0), (1, 0), (2, 0)]), ((0, True),), fetch=2
        )
        assert execute_node(node, 0, ctx) == [(1, 0), (2, 0)]


class TestSortRows:
    def test_multi_key_mixed_directions(self):
        rows = [(1, "b"), (2, "a"), (1, "a"), (2, "b")]
        result = sort_rows(rows, [(0, True), (1, False)])
        assert result == [(1, "b"), (1, "a"), (2, "b"), (2, "a")]

    def test_descending_strings(self):
        rows = [("a",), ("c",), ("b",)]
        assert sort_rows(rows, [(0, False)]) == [("c",), ("b",), ("a",)]

    def test_stability(self):
        rows = [(1, "first"), (1, "second")]
        assert sort_rows(rows, [(0, True)]) == rows


JOIN_LEFT = [(1, "a"), (2, "b"), (3, "c"), (3, "d")]
JOIN_RIGHT = [(2, "x"), (3, "y"), (3, "z"), (4, "w")]


def make_join(cls, join_type=JoinType.INNER, **kwargs):
    left = values_node(JOIN_LEFT, ("l1", "l2"))
    right = values_node(JOIN_RIGHT, ("r1", "r2"))
    if cls is PhysNestedLoopJoin:
        condition = BinaryOp("=", ColRef(0), ColRef(2))
        return cls(left, right, condition, join_type, Distribution.single())
    if cls is PhysMergeJoin:
        sorted_left = PhysSort(left, ((0, True),))
        sorted_right = PhysSort(right, ((0, True),))
        return cls(
            sorted_left, sorted_right, [(0, 0)], None, join_type,
            Distribution.single(),
        )
    return cls(left, right, [(0, 0)], None, join_type, Distribution.single())


EXPECTED_INNER = sorted(
    [
        (2, "b", 2, "x"),
        (3, "c", 3, "y"), (3, "c", 3, "z"),
        (3, "d", 3, "y"), (3, "d", 3, "z"),
    ]
)


@pytest.mark.parametrize("cls", [PhysNestedLoopJoin, PhysHashJoin, PhysMergeJoin])
class TestJoinAlgorithms:
    def test_inner(self, cls, ctx):
        rows = execute_node(make_join(cls), 0, ctx)
        assert sorted(rows) == EXPECTED_INNER

    def test_semi(self, cls, ctx):
        rows = execute_node(make_join(cls, JoinType.SEMI), 0, ctx)
        assert sorted(rows) == [(2, "b"), (3, "c"), (3, "d")]

    def test_anti(self, cls, ctx):
        rows = execute_node(make_join(cls, JoinType.ANTI), 0, ctx)
        assert sorted(rows) == [(1, "a")]

    def test_left(self, cls, ctx):
        rows = execute_node(make_join(cls, JoinType.LEFT), 0, ctx)
        assert (1, "a", None, None) in rows
        assert len(rows) == 6


class TestJoinResiduals:
    def test_hash_join_residual(self, ctx):
        left = values_node(JOIN_LEFT, ("l1", "l2"))
        right = values_node(JOIN_RIGHT, ("r1", "r2"))
        residual = BinaryOp("=", ColRef(3), Literal("y"))
        join = PhysHashJoin(
            left, right, [(0, 0)], residual, JoinType.INNER,
            Distribution.single(),
        )
        rows = execute_node(join, 0, ctx)
        assert sorted(rows) == [(3, "c", 3, "y"), (3, "d", 3, "y")]

    def test_merge_join_residual_semi(self, ctx):
        left = PhysSort(values_node(JOIN_LEFT, ("l1", "l2")), ((0, True),))
        right = PhysSort(values_node(JOIN_RIGHT, ("r1", "r2")), ((0, True),))
        residual = BinaryOp("=", ColRef(3), Literal("z"))
        join = PhysMergeJoin(
            left, right, [(0, 0)], residual, JoinType.SEMI,
            Distribution.single(),
        )
        rows = execute_node(join, 0, ctx)
        assert sorted(rows) == [(3, "c"), (3, "d")]

    def test_cross_join(self, ctx):
        join = PhysNestedLoopJoin(
            values_node([(1,)], ("a",)), values_node([(2,), (3,)], ("b",)),
            None, JoinType.INNER, Distribution.single(),
        )
        assert sorted(execute_node(join, 0, ctx)) == [(1, 2), (1, 3)]


class TestTimeout:
    def test_nested_loop_prechecks_pair_count(self, store):
        ctx = ExecContext(store, limit_units=10.0)
        join = PhysNestedLoopJoin(
            values_node([(i,) for i in range(100)], ("a",)),
            values_node([(i,) for i in range(100)], ("b",)),
            BinaryOp("=", ColRef(0), ColRef(1)),
            JoinType.INNER,
            Distribution.single(),
        )
        with pytest.raises(ExecutionTimeoutError):
            execute_node(join, 0, ctx)


class TestAggregateOperators:
    def _rows(self):
        return values_node(
            [("a", 1.0), ("b", 2.0), ("a", 3.0), ("b", 4.0)], ("g", "v")
        )

    def test_hash_aggregate_single_phase(self, ctx):
        agg = PhysHashAggregate(
            self._rows(), (0,),
            (AggCall(AggFunc.SUM, ColRef(1)), AggCall(AggFunc.COUNT, None)),
            AggPhase.SINGLE, Distribution.single(),
        )
        rows = execute_node(agg, 0, ctx)
        assert sorted(rows) == [("a", 4.0, 2), ("b", 6.0, 2)]

    def test_map_then_reduce_matches_single(self, ctx):
        calls = (AggCall(AggFunc.AVG, ColRef(1)),)
        map_agg = PhysHashAggregate(
            self._rows(), (0,), calls, AggPhase.MAP, Distribution.single()
        )
        partials = execute_node(map_agg, 0, ctx)
        receiver = PhysReceiver(42, ["g", "partial"], Distribution.single())
        ctx.deliver(42, 0, partials)
        reduce_agg = PhysHashAggregate(
            receiver, (0,), calls, AggPhase.REDUCE, Distribution.single()
        )
        rows = execute_node(reduce_agg, 0, ctx)
        assert sorted(rows) == [("a", 2.0), ("b", 3.0)]

    def test_scalar_aggregate_on_empty_input_yields_row(self, ctx):
        agg = PhysHashAggregate(
            values_node([], ("g", "v")), (),
            (AggCall(AggFunc.COUNT, None), AggCall(AggFunc.SUM, ColRef(1))),
            AggPhase.SINGLE, Distribution.single(),
        )
        assert execute_node(agg, 0, ctx) == [(0, None)]

    def test_sort_aggregate_on_sorted_input(self, ctx):
        sorted_input = PhysSort(self._rows(), ((0, True),))
        agg = PhysSortAggregate(
            sorted_input, (0,), (AggCall(AggFunc.MAX, ColRef(1)),),
            AggPhase.SINGLE, Distribution.single(),
        )
        rows = execute_node(agg, 0, ctx)
        assert rows == [("a", 3.0), ("b", 4.0)]

    def test_sort_aggregate_scalar_empty(self, ctx):
        agg = PhysSortAggregate(
            values_node([], ("g", "v")), (),
            (AggCall(AggFunc.COUNT, None),),
            AggPhase.SINGLE, Distribution.single(),
        )
        assert execute_node(agg, 0, ctx) == [(0,)]
