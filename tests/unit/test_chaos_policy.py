"""Unit tests for the retry policy, deadline accounting and percentiles."""

import pytest

from repro.bench.harness import latency_percentiles, percentile
from repro.common.config import SystemConfig
from repro.common.errors import (
    ExecutionTimeoutError,
    QueryDeadlineError,
    SiteFailureError,
)
from repro.core.cluster import QueryOutcome, QueryStatus
from repro.faults.chaos import RetryPolicy, _failed_attempt_seconds


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_seconds=0.25, factor=2.0)
        assert policy.delay(0) == pytest.approx(0.25)
        assert policy.delay(1) == pytest.approx(0.5)
        assert policy.delay(2) == pytest.approx(1.0)

    def test_total_backoff_sums_the_series(self):
        policy = RetryPolicy(base_seconds=0.1, factor=3.0)
        assert policy.total_backoff(3) == pytest.approx(0.1 + 0.3 + 0.9)

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)

    def test_jitter_zero_is_exact(self):
        assert RetryPolicy(jitter=0.0).delay(4) == RetryPolicy().delay(4)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_seconds=1.0, factor=1.0, jitter=0.5, seed=9)
        first = policy.delay(0, salt=123)
        assert first == policy.delay(0, salt=123)  # replayable
        assert 1.0 <= first <= 1.5
        assert first != policy.delay(0, salt=124)  # salt de-synchronises


class TestFailedAttemptAccounting:
    def test_site_failure_burns_time_up_to_the_crash(self):
        outcome = QueryOutcome(
            QueryStatus.FAILED_SITE,
            error=SiteFailureError("boom", site=1, at=2.0),
        )
        config = SystemConfig.ic_plus(4)
        assert _failed_attempt_seconds(outcome, 0.5, config) == pytest.approx(1.5)
        # A crash in the past costs the attempt nothing extra.
        assert _failed_attempt_seconds(outcome, 3.0, config) == 0.0

    def test_deadline_burns_the_deadline(self):
        outcome = QueryOutcome(
            QueryStatus.TIMED_OUT,
            error=QueryDeadlineError("deadline", limit=1.25),
        )
        config = SystemConfig.ic_plus(4)
        assert _failed_attempt_seconds(outcome, 0.0, config) == pytest.approx(1.25)

    def test_budget_timeout_burns_the_runtime_limit(self):
        outcome = QueryOutcome(
            QueryStatus.TIMED_OUT, error=ExecutionTimeoutError("budget")
        )
        config = SystemConfig.ic_plus(4)
        assert _failed_attempt_seconds(outcome, 0.0, config) == pytest.approx(
            config.runtime_limit_seconds
        )

    def test_row_phase_faults_fail_fast(self):
        outcome = QueryOutcome(QueryStatus.FAILED_SITE, error=None)
        assert _failed_attempt_seconds(outcome, 0.0, SystemConfig.ic(4)) == 0.0


class TestPercentile:
    def test_nearest_rank_on_known_sample(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 50.0) == 30.0
        assert percentile(values, 95.0) == 50.0
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 50.0

    def test_returned_value_is_always_observed(self):
        values = [3.0, 1.0, 2.0]
        for q in (1, 33, 50, 66, 99):
            assert percentile(values, q) in values

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_latency_percentiles_keys(self):
        summary = latency_percentiles([1.0, 2.0, 3.0])
        assert set(summary) == {50.0, 95.0, 99.0}
