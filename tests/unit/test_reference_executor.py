"""Unit tests for the reference (oracle) executor.

The oracle itself needs grounding: here it is cross-checked against the
even simpler ``naive_execute`` interpreter the suite has always used, and
against hand-computed answers on the company data set.
"""

import pytest

from helpers import make_company_store, naive_execute, normalise
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalTableScan,
)
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse
from repro.verify.reference import ReferenceExecutor, push_filters

QUERIES = [
    "select * from dept",
    "select name, salary from emp where salary > 100000",
    "select e.name, d.dept_name from emp e, dept d "
    "where e.dept_id = d.dept_id",
    "select d.dept_name, count(*), sum(e.salary) from emp e, dept d "
    "where e.dept_id = d.dept_id group by d.dept_name",
    "select region, avg(amount) from sales group by region "
    "order by region desc",
    "select count(*) from emp e, sales s, dept d "
    "where e.emp_id = s.emp_id and e.dept_id = d.dept_id "
    "and s.amount > 2500",
    "select name from emp where exists "
    "(select 1 from sales s where s.emp_id = emp.emp_id "
    "and s.amount > 4900)",
    "select dept_id, max(salary) from emp group by dept_id "
    "order by dept_id limit 3",
]


@pytest.fixture(scope="module")
def store():
    return make_company_store(sites=4)


def to_logical(store, sql):
    return SqlToRelConverter(store.catalog).convert(parse(sql))


class TestAgainstNaiveInterpreter:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_naive_execute(self, store, sql):
        logical = to_logical(store, sql)
        reference = ReferenceExecutor(store).execute(logical)
        naive = naive_execute(logical, store)
        ordered = sql.lower().find("order by") >= 0
        assert normalise(reference) == normalise(naive)
        if ordered and "limit" not in sql.lower():
            assert normalise(reference, ordered=True) == normalise(
                naive, ordered=True
            )


class TestHandComputed:
    def test_scan_returns_all_partitions(self, store):
        rows = ReferenceExecutor(store).execute(
            to_logical(store, "select * from sales")
        )
        assert len(rows) == store.row_count("sales") == 500

    def test_scalar_aggregate_over_empty_input_yields_one_row(self, store):
        rows = ReferenceExecutor(store).execute(
            to_logical(store, "select count(*), sum(salary) from emp "
                              "where salary < 0")
        )
        assert rows == [(0, None)]

    def test_group_by_over_empty_input_yields_no_rows(self, store):
        rows = ReferenceExecutor(store).execute(
            to_logical(store, "select dept_id, count(*) from emp "
                              "where salary < 0 group by dept_id")
        )
        assert rows == []

    def test_join_row_count_matches_python(self, store):
        rows = ReferenceExecutor(store).execute(
            to_logical(
                store,
                "select e.emp_id, s.sale_id from emp e, sales s "
                "where e.emp_id = s.emp_id",
            )
        )
        emp = [r for p in store.table("emp").partitions for r in p]
        sales = [r for p in store.table("sales").partitions for r in p]
        expected = sum(
            1 for e in emp for s in sales if e[0] == s[1]
        )
        assert len(rows) == expected == 500

    def test_left_join_pads_unmatched_rows(self, store):
        scan_dept = LogicalTableScan(
            "dept", "d", store.catalog.table("dept").column_names
        )
        scan_emp = LogicalTableScan(
            "emp", "e", store.catalog.table("emp").column_names
        )
        # dept.dept_id = emp.dept_id, but only employees of dept 1.
        filtered = LogicalFilter(
            scan_emp,
            BinaryOp("=", ColRef(1, "dept_id"), Literal(1)),
        )
        join = LogicalJoin(
            scan_dept,
            filtered,
            BinaryOp("=", ColRef(0, "dept_id"), ColRef(3 + 1, "dept_id")),
            JoinType.LEFT,
        )
        rows = ReferenceExecutor(store).execute(join)
        unmatched = [r for r in rows if r[3] is None]
        matched = [r for r in rows if r[3] is not None]
        assert matched and unmatched
        assert all(r[0] == 1 for r in matched)
        assert all(r[0] != 1 for r in unmatched)


class TestFilterPushdown:
    def test_pushdown_preserves_semantics(self, store):
        sql = (
            "select e.name, d.dept_name, s.amount "
            "from emp e, dept d, sales s "
            "where e.dept_id = d.dept_id and e.emp_id = s.emp_id "
            "and s.amount > 4000 and d.dept_name <> 'dept3'"
        )
        logical = to_logical(store, sql)
        executor = ReferenceExecutor(store)
        pushed = executor._eval(push_filters(logical))
        raw = executor._eval(logical)
        assert normalise(pushed) == normalise(raw)

    def test_pushdown_moves_single_side_conjuncts_below_join(self, store):
        logical = to_logical(
            store,
            "select e.name from emp e, dept d "
            "where e.dept_id = d.dept_id and e.salary > 150000",
        )
        rewritten = push_filters(logical)

        def has_filter_above_join(node):
            if isinstance(node, LogicalFilter) and isinstance(
                node.input, LogicalJoin
            ):
                return True
            return any(has_filter_above_join(c) for c in node.inputs)

        assert not has_filter_above_join(rewritten)

    def test_pushdown_keeps_aggregates_intact(self, store):
        logical = to_logical(
            store,
            "select dept_id, count(*) from emp group by dept_id",
        )
        rewritten = push_filters(logical)
        kinds = set()

        def collect(node):
            kinds.add(type(node))
            for child in node.inputs:
                collect(child)

        collect(rewritten)
        assert LogicalAggregate in kinds
