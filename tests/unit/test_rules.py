"""Unit tests for the logical optimisation rules."""

import pytest

from repro.planner.hep import HepPlanner
from repro.planner.rules import (
    FilterAggregateTransposeRule,
    FilterCorrelateRule,
    FilterIntoJoinRule,
    FilterJoinTransposeRule,
    FilterMergeRule,
    FilterProjectTransposeRule,
    FilterSortTransposeRule,
    JoinConditionPushRule,
    JoinConditionSimplificationRule,
    ProjectMergeRule,
    ProjectRemoveRule,
    stage_one_passes,
    substitute_refs,
)
from repro.rel.expr import (
    BinaryOp,
    ColRef,
    Literal,
    make_conjunction,
    make_disjunction,
)
from repro.rel.logical import (
    AggCall,
    AggFunc,
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalSort,
    LogicalTableScan,
)

SCAN_A = LogicalTableScan("ta", "a", ["x", "y", "z"])
SCAN_B = LogicalTableScan("tb", "b", ["u", "v"])


def eq(i, j):
    return BinaryOp("=", ColRef(i), ColRef(j))


def lit(i, value):
    return BinaryOp("=", ColRef(i), Literal(value))


class TestFilterMerge:
    def test_merges_stacked_filters(self):
        node = LogicalFilter(LogicalFilter(SCAN_A, lit(0, 1)), lit(1, 2))
        merged = FilterMergeRule().apply(node)
        assert isinstance(merged, LogicalFilter)
        assert isinstance(merged.input, LogicalTableScan)
        assert "AND" in merged.condition.digest()

    def test_no_match_returns_none(self):
        assert FilterMergeRule().apply(LogicalFilter(SCAN_A, lit(0, 1))) is None


class TestFilterProjectTranspose:
    def test_inlines_projection(self):
        project = LogicalProject(
            SCAN_A, [BinaryOp("+", ColRef(0), Literal(1))], ["xp"]
        )
        node = LogicalFilter(project, lit(0, 5))
        pushed = FilterProjectTransposeRule().apply(node)
        assert isinstance(pushed, LogicalProject)
        inner_filter = pushed.input
        assert isinstance(inner_filter, LogicalFilter)
        assert "($0 + 1)" in inner_filter.condition.digest()


class TestProjectRules:
    def test_project_merge_composes(self):
        inner = LogicalProject(SCAN_A, [ColRef(2), ColRef(0)], ["z", "x"])
        outer = LogicalProject(inner, [ColRef(1)], ["x"])
        merged = ProjectMergeRule().apply(outer)
        assert isinstance(merged.input, LogicalTableScan)
        assert merged.exprs[0].index == 0

    def test_identity_project_removed(self):
        node = LogicalProject(
            SCAN_A, [ColRef(0), ColRef(1), ColRef(2)], list(SCAN_A.fields)
        )
        assert ProjectRemoveRule().apply(node) is SCAN_A

    def test_renaming_project_kept(self):
        node = LogicalProject(
            SCAN_A, [ColRef(0), ColRef(1), ColRef(2)], ["p", "q", "r"]
        )
        assert ProjectRemoveRule().apply(node) is None

    def test_permuting_project_kept(self):
        node = LogicalProject(SCAN_A, [ColRef(1), ColRef(0), ColRef(2)],
                              ["a.y", "a.x", "a.z"])
        assert ProjectRemoveRule().apply(node) is None


class TestFilterIntoJoin:
    def test_condition_moves_into_inner_join(self):
        join = LogicalJoin(SCAN_A, SCAN_B, None)
        node = LogicalFilter(join, eq(0, 3))
        merged = FilterIntoJoinRule().apply(node)
        assert isinstance(merged, LogicalJoin)
        assert merged.condition is not None

    def test_skips_correlate_joins(self):
        join = LogicalJoin(SCAN_A, SCAN_B, None, correlate_origin=True)
        node = LogicalFilter(join, eq(0, 3))
        assert FilterIntoJoinRule().apply(node) is None

    def test_skips_left_joins(self):
        join = LogicalJoin(SCAN_A, SCAN_B, eq(0, 3), JoinType.LEFT)
        node = LogicalFilter(join, lit(0, 1))
        assert FilterIntoJoinRule().apply(node) is None


class TestJoinConditionPush:
    def test_one_sided_conjuncts_pushed(self):
        condition = make_conjunction([eq(0, 3), lit(1, 5), lit(4, 9)])
        join = LogicalJoin(SCAN_A, SCAN_B, condition)
        pushed = JoinConditionPushRule().apply(join)
        assert isinstance(pushed.left, LogicalFilter)
        assert isinstance(pushed.right, LogicalFilter)
        # The right-side filter is re-indexed to the right input's frame.
        assert pushed.right.condition.digest() == "($1 = 9)"
        assert pushed.condition.digest() == eq(0, 3).digest()

    def test_anti_join_left_conjunct_not_pushed(self):
        """Anti joins emit left rows *failing* the condition; a left-only
        ON conjunct must stay put."""
        condition = make_conjunction([eq(0, 3), lit(1, 5)])
        join = LogicalJoin(SCAN_A, SCAN_B, condition, JoinType.ANTI)
        pushed = JoinConditionPushRule().apply(join)
        assert pushed is None or not isinstance(pushed.left, LogicalFilter)

    def test_anti_join_right_conjunct_is_pushed(self):
        condition = make_conjunction([eq(0, 3), lit(4, 9)])
        join = LogicalJoin(SCAN_A, SCAN_B, condition, JoinType.ANTI)
        pushed = JoinConditionPushRule().apply(join)
        assert isinstance(pushed.right, LogicalFilter)


class TestFilterJoinTranspose:
    def test_splits_filter_across_inner_join(self):
        join = LogicalJoin(SCAN_A, SCAN_B, eq(0, 3))
        node = LogicalFilter(join, make_conjunction([lit(0, 1), lit(3, 2)]))
        pushed = FilterJoinTransposeRule().apply(node)
        assert isinstance(pushed, LogicalJoin)
        assert isinstance(pushed.left, LogicalFilter)
        assert isinstance(pushed.right, LogicalFilter)

    def test_left_join_right_conjunct_stays(self):
        join = LogicalJoin(SCAN_A, SCAN_B, eq(0, 3), JoinType.LEFT)
        node = LogicalFilter(join, lit(3, 2))
        pushed = FilterJoinTransposeRule().apply(node)
        assert pushed is None

    def test_semi_join_filter_pushes_to_left(self):
        join = LogicalJoin(SCAN_A, SCAN_B, eq(0, 3), JoinType.SEMI)
        node = LogicalFilter(join, lit(0, 1))
        pushed = FilterJoinTransposeRule().apply(node)
        assert isinstance(pushed, LogicalJoin)
        assert isinstance(pushed.left, LogicalFilter)

    def test_correlate_join_blocks_standard_pushdown(self):
        join = LogicalJoin(
            SCAN_A, SCAN_B, eq(0, 3), JoinType.SEMI, correlate_origin=True
        )
        node = LogicalFilter(join, lit(0, 1))
        assert FilterJoinTransposeRule().apply(node) is None


class TestFilterCorrelate:
    """The missing FILTER_CORRELATE rule (Section 4.1)."""

    def test_pushes_past_semi_correlate(self):
        join = LogicalJoin(
            SCAN_A, SCAN_B, eq(0, 3), JoinType.SEMI, correlate_origin=True
        )
        node = LogicalFilter(join, lit(0, 1))
        pushed = FilterCorrelateRule().apply(node)
        assert isinstance(pushed, LogicalJoin)
        assert isinstance(pushed.left, LogicalFilter)

    def test_inner_correlate_pushes_left_only_conjuncts(self):
        join = LogicalJoin(
            SCAN_A, SCAN_B, eq(0, 3), JoinType.INNER, correlate_origin=True
        )
        condition = make_conjunction([lit(0, 1), lit(4, 2)])
        pushed = FilterCorrelateRule().apply(LogicalFilter(join, condition))
        assert isinstance(pushed, LogicalFilter)  # right-side part remains
        inner_join = pushed.input
        assert isinstance(inner_join.left, LogicalFilter)

    def test_ignores_plain_joins(self):
        join = LogicalJoin(SCAN_A, SCAN_B, eq(0, 3), JoinType.SEMI)
        assert FilterCorrelateRule().apply(LogicalFilter(join, lit(0, 1))) is None


class TestFilterSortAggregateTranspose:
    def test_pushes_below_sort_without_fetch(self):
        node = LogicalFilter(LogicalSort(SCAN_A, ((0, True),)), lit(0, 1))
        pushed = FilterSortTransposeRule().apply(node)
        assert isinstance(pushed, LogicalSort)
        assert isinstance(pushed.input, LogicalFilter)

    def test_fetch_blocks_push(self):
        node = LogicalFilter(
            LogicalSort(SCAN_A, ((0, True),), fetch=5), lit(0, 1)
        )
        assert FilterSortTransposeRule().apply(node) is None

    def test_group_key_conjunct_pushes_below_aggregate(self):
        agg = LogicalAggregate(SCAN_A, (1,), (AggCall(AggFunc.COUNT, None),))
        node = LogicalFilter(agg, lit(0, 7))  # references group key 0
        pushed = FilterAggregateTransposeRule().apply(node)
        assert isinstance(pushed, LogicalAggregate)
        inner = pushed.input
        assert isinstance(inner, LogicalFilter)
        assert inner.condition.digest() == "($1 = 7)"  # remapped to input

    def test_aggregate_value_conjunct_stays(self):
        agg = LogicalAggregate(SCAN_A, (1,), (AggCall(AggFunc.COUNT, None),))
        node = LogicalFilter(agg, lit(1, 7))  # references the count column
        assert FilterAggregateTransposeRule().apply(node) is None


class TestConditionSimplification:
    """Section 5.2."""

    def _or_of_ands(self):
        common = eq(0, 3)
        return make_disjunction(
            [
                make_conjunction([common, lit(1, 1)]),
                make_conjunction([common, lit(1, 2)]),
            ]
        )

    def test_join_condition_is_factored(self):
        join = LogicalJoin(SCAN_A, SCAN_B, self._or_of_ands())
        rewritten = JoinConditionSimplificationRule().apply(join)
        assert rewritten is not None
        digest = rewritten.condition.digest()
        assert digest.startswith("(($0 = $3) AND")

    def test_filter_condition_is_factored(self):
        node = LogicalFilter(LogicalJoin(SCAN_A, SCAN_B, None), self._or_of_ands())
        rewritten = JoinConditionSimplificationRule().apply(node)
        assert rewritten is not None

    def test_no_common_conjunct_is_noop(self):
        join = LogicalJoin(
            SCAN_A, SCAN_B, make_disjunction([lit(0, 1), lit(1, 2)])
        )
        assert JoinConditionSimplificationRule().apply(join) is None


class TestStageOnePasses:
    def test_baseline_has_three_passes_without_filter_correlate(self):
        passes = stage_one_passes(False, False)
        assert len(passes) == 3
        names = {r.name for group in passes for r in group}
        assert "FilterCorrelate" not in names
        assert "JoinConditionSimplification" not in names

    def test_improved_passes_add_the_new_rules(self):
        passes = stage_one_passes(True, True)
        names = {r.name for group in passes for r in group}
        assert "FilterCorrelate" in names
        assert "JoinConditionSimplification" in names

    def test_hep_planner_reaches_fixpoint(self):
        join = LogicalJoin(SCAN_A, SCAN_B, None)
        tree = LogicalFilter(join, make_conjunction([eq(0, 3), lit(0, 1), lit(3, 2)]))
        for rules in stage_one_passes(True, True):
            tree = HepPlanner(rules).optimize(tree)
        # Filters ended up on the scans, equi condition on the join.
        assert isinstance(tree, LogicalJoin)
        assert isinstance(tree.left, LogicalFilter)
        assert isinstance(tree.right, LogicalFilter)


class TestSubstituteRefs:
    def test_substitution(self):
        expr = BinaryOp("+", ColRef(0), ColRef(1))
        result = substitute_refs(expr, [Literal(10), ColRef(5)])
        assert result.digest() == "(10 + $5)"
