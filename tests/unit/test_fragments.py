"""Unit tests for Algorithm 1 (execution-plan fragmentation)."""

import pytest

from repro.exec.fragments import Fragment, PhysReceiver, fragment_plan
from repro.exec.physical import (
    PhysExchange,
    PhysFilter,
    PhysHashJoin,
    PhysTableScan,
    PhysValues,
)
from repro.rel.expr import BinaryOp, ColRef, Literal
from repro.rel.logical import JoinType
from repro.rel.traits import Collation, Distribution


def scan(name="t", dist=None, sites=4):
    return PhysTableScan(
        name, name, [f"{name}.a", f"{name}.b"],
        dist or Distribution.hash((0,)), sites,
    )


class TestFragmentation:
    def test_no_exchange_yields_single_fragment(self):
        plan = PhysFilter(scan(), BinaryOp("=", ColRef(0), Literal(1)))
        fragments = fragment_plan(plan)
        assert len(fragments) == 1
        assert fragments[0].is_root

    def test_one_exchange_splits_into_two(self):
        exchange = PhysExchange(scan(), Distribution.single())
        fragments = fragment_plan(exchange)
        assert len(fragments) == 2
        child, root = fragments
        assert not child.is_root and root.is_root
        assert child.sender.target.is_single
        assert isinstance(root.root, PhysReceiver)
        assert root.child_ids == [child.fragment_id]

    def test_receiver_carries_exchange_identity(self):
        exchange = PhysExchange(scan(), Distribution.single())
        fragments = fragment_plan(exchange)
        receiver = fragments[1].root
        assert receiver.exchange_id == fragments[0].sender.exchange_id

    def test_merging_exchange_keeps_collation_on_receiver(self):
        collation = Collation(((0, True),))
        exchange = PhysExchange(scan(), Distribution.single(), collation)
        fragments = fragment_plan(exchange)
        assert fragments[1].root.collation == collation

    def test_join_with_two_exchanges_yields_three_fragments(self):
        left = PhysExchange(scan("a"), Distribution.single())
        right = PhysExchange(scan("b"), Distribution.single())
        join = PhysHashJoin(
            left, right, [(0, 0)], None, JoinType.INNER, Distribution.single()
        )
        fragments = fragment_plan(join)
        assert len(fragments) == 3
        root = fragments[-1]
        assert root.is_root
        assert sorted(root.child_ids) == [0, 1]
        # The root fragment's join now reads from two receivers.
        join_node = root.root
        assert all(isinstance(c, PhysReceiver) for c in join_node.inputs)

    def test_nested_exchanges(self):
        inner = PhysExchange(scan(), Distribution.hash((0,)))
        outer = PhysExchange(
            PhysFilter(inner, BinaryOp("=", ColRef(0), Literal(1))),
            Distribution.single(),
        )
        fragments = fragment_plan(outer)
        assert len(fragments) == 3
        middle = fragments[1]
        assert middle.child_ids == [fragments[0].fragment_id]

    def test_fragments_listed_children_first(self):
        exchange = PhysExchange(scan(), Distribution.single())
        fragments = fragment_plan(exchange)
        seen = set()
        for fragment in fragments:
            for child in fragment.child_ids:
                assert child in seen
            seen.add(fragment.fragment_id)

    def test_original_plan_not_mutated(self):
        exchange = PhysExchange(scan(), Distribution.single())
        fragment_plan(exchange)
        assert isinstance(exchange.input, PhysTableScan)

    def test_explain_renders(self):
        exchange = PhysExchange(scan(), Distribution.single())
        fragments = fragment_plan(exchange)
        assert "Fragment" in fragments[0].explain()
        assert "RootFragment" in fragments[1].explain()
