"""Unit tests for the simulated-clock tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    activate,
    get_tracer,
    validate_trace,
)

pytestmark = pytest.mark.obs


def test_clock_only_moves_on_advance():
    tracer = Tracer()
    assert tracer.clock == 0.0
    tracer.advance(5.0)
    tracer.advance(0.0)
    tracer.advance(-3.0)  # negative amounts are ignored, clock is monotonic
    assert tracer.clock == 5.0


def test_span_tree_is_well_nested():
    tracer = Tracer()
    with tracer.span("query"):
        tracer.advance(1.0)
        with tracer.span("plan"):
            tracer.advance(2.0)
        with tracer.span("execute"):
            tracer.advance(4.0)
    (root,) = tracer.roots
    assert root.name == "query"
    assert [c.name for c in root.children] == ["plan", "execute"]
    plan, execute = root.children
    assert (root.start, root.end) == (0.0, 7.0)
    assert (plan.start, plan.end) == (1.0, 3.0)
    assert (execute.start, execute.end) == (3.0, 7.0)
    assert root.duration == 7.0
    assert plan.duration + execute.duration <= root.duration


def test_span_attrs_and_annotate():
    tracer = Tracer()
    with tracer.span("query", system="IC+") as span:
        tracer.annotate(fragments=3)
    assert span.attrs == {"system": "IC+", "fragments": 3}
    tracer.annotate(ignored=True)  # outside any span: a no-op
    assert "ignored" not in span.attrs


def test_span_closes_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("query"):
            tracer.advance(2.0)
            raise RuntimeError("boom")
    (root,) = tracer.roots
    assert root.end == 2.0
    with tracer.span("again"):  # the stack recovered
        pass
    assert [s.name for s in tracer.roots] == ["query", "again"]


def test_spans_walk_depth_first():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c"):
                pass
        with tracer.span("d"):
            pass
    assert [s.name for s in tracer.spans()] == ["a", "b", "c", "d"]


def test_to_dict_matches_schema_and_round_trips_json():
    tracer = Tracer()
    with tracer.span("query", sql="select 1"):
        tracer.advance(3.0)
    artefact = tracer.to_dict(query="Q1", system="IC+M", metrics={"x": 1.0})
    assert artefact["schema"] == TRACE_SCHEMA
    assert artefact["clock"] == "work-units"
    assert artefact["metrics"] == {"x": 1.0}
    assert validate_trace(artefact) == []
    # and survives a JSON round trip unchanged
    assert json.loads(json.dumps(artefact)) == artefact


def test_to_dict_omits_metrics_when_absent():
    artefact = Tracer().to_dict(query="q", system="IC")
    assert "metrics" not in artefact
    assert validate_trace(artefact) == []


def test_to_chrome_emits_complete_events():
    tracer = Tracer()
    with tracer.span("query"):
        tracer.advance(1.0)
        with tracer.span("plan", rules=2):
            tracer.advance(4.0)
    chrome = tracer.to_chrome()
    events = chrome["traceEvents"]
    assert [e["name"] for e in events] == ["query", "plan"]
    assert all(e["ph"] == "X" for e in events)
    assert events[0]["tid"] == 0 and events[1]["tid"] == 1
    assert events[1]["ts"] == 1.0 and events[1]["dur"] == 4.0
    assert events[1]["args"] == {"rules": 2}
    json.loads(json.dumps(chrome))  # chrome://tracing loads plain JSON


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    tracer.advance(100.0)
    with tracer.span("query") as span:
        span.attrs["x"] = 1  # writable but discarded
        with tracer.span("inner"):
            pass
    assert tracer.clock == 0.0
    assert tracer.roots == []
    assert tracer.spans() == []
    assert not tracer.enabled
    assert NULL_TRACER.enabled is False


def test_activate_scopes_the_active_tracer():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    with activate(tracer):
        assert get_tracer() is tracer
        inner = Tracer()
        with activate(inner):
            assert get_tracer() is inner
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_activate_restores_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with activate(tracer):
            raise ValueError()
    assert get_tracer() is NULL_TRACER


def test_validate_trace_rejects_malformed_artefacts():
    assert validate_trace([]) != []
    assert validate_trace({"schema": "bogus/v9"}) != []
    bad_span = {
        "schema": TRACE_SCHEMA,
        "query": "q",
        "system": "IC",
        "clock": "work-units",
        "spans": [
            {
                "name": "query",
                "start": 0.0,
                "end": 5.0,
                "attrs": {},
                "children": [
                    # escapes the parent interval
                    {
                        "name": "child",
                        "start": 4.0,
                        "end": 9.0,
                        "attrs": {},
                        "children": [],
                    }
                ],
            }
        ],
    }
    problems = validate_trace(bad_span)
    assert any("not nested within parent" in p for p in problems)


def test_validate_trace_rejects_end_before_start():
    artefact = {
        "schema": TRACE_SCHEMA,
        "query": "q",
        "system": "IC",
        "clock": "work-units",
        "spans": [
            {"name": "s", "start": 3.0, "end": 1.0, "attrs": {}, "children": []}
        ],
    }
    assert any("end < start" in p for p in validate_trace(artefact))


def test_span_to_dict_shape():
    span = Span("parse", 1.0, sql="select 1")
    span.end = 2.0
    assert span.to_dict() == {
        "name": "parse",
        "start": 1.0,
        "end": 2.0,
        "attrs": {"sql": "select 1"},
        "children": [],
    }
