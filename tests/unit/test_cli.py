"""Unit tests for the repro-bench command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestArgumentParsing:
    def test_failures_defaults(self):
        args = build_parser().parse_args(["failures"])
        assert args.sf == (0.5,)
        assert args.sites == (4,)

    def test_scale_factor_list(self):
        args = build_parser().parse_args(["figure7", "--sf", "0.1,0.2"])
        assert args.sf == (0.1, 0.2)

    def test_sites_list(self):
        args = build_parser().parse_args(["figure8", "--sites", "4,8"])
        assert args.sites == (4, 8)

    def test_table3_clients(self):
        args = build_parser().parse_args(["table3", "--clients", "2,16"])
        assert args.clients == (2, 16)

    def test_query_options(self):
        args = build_parser().parse_args(
            ["query", "select 1 from t", "--system", "IC", "--bench", "ssb"]
        )
        assert args.system == "IC"
        assert args.bench == "ssb"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_adaptive_defaults(self):
        args = build_parser().parse_args(["adaptive"])
        assert args.repeats == 3
        assert args.limit == 8
        assert args.threshold == 8.0
        assert args.sf == (0.05,)

    def test_query_no_plan_cache_flag(self):
        args = build_parser().parse_args(["query", "select 1", "--no-plan-cache"])
        assert args.no_plan_cache is True
        args = build_parser().parse_args(["query", "select 1"])
        assert args.no_plan_cache is False

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "select 1", "--system", "XX"])

    def test_query_backend_flag(self):
        args = build_parser().parse_args(
            ["query", "select 1", "--backend", "columnar"]
        )
        assert args.backend == "columnar"
        args = build_parser().parse_args(["query", "select 1"])
        assert args.backend == "row"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "select 1", "--backend", "x"])

    def test_colbench_defaults(self):
        args = build_parser().parse_args(["colbench"])
        assert args.sf == (1.0,)
        assert args.sites == (4,)
        assert args.repeats == 3
        assert args.system == "IC+"
        assert args.queries is None
        assert args.smoke is False

    def test_midquery_defaults(self):
        args = build_parser().parse_args(["midquery"])
        assert args.systems == "IC,IC+,IC+M"
        assert args.queries is None
        assert args.seed == 7
        assert args.threshold == 4.0
        assert args.sf == (1.0,)
        assert args.sites == (4,)
        assert args.out is None
        assert args.smoke is False

    def test_sketchbench_defaults(self):
        args = build_parser().parse_args(["sketchbench"])
        assert args.systems == "IC,IC+,IC+M"
        assert args.benches == "company,tpch,ssb"
        assert args.queries is None
        assert args.seed == 7
        assert args.sf == (0.05,)
        assert args.sites == (4,)
        assert args.out is None
        assert args.smoke is False

    def test_fedbench_defaults(self):
        args = build_parser().parse_args(["fedbench"])
        assert args.systems == "IC,IC+,IC+M"
        assert args.queries is None
        assert args.seed == 7
        assert args.sf == (0.05,)
        assert args.sites == (4,)
        assert args.out is None
        assert args.smoke is False


class TestExecution:
    def test_query_command_prints_rows(self, capsys):
        main(["query", "select count(*) from region", "--sf", "0.1"])
        out = capsys.readouterr().out
        assert "(5,)" in out
        assert "1 rows" in out

    def test_query_explain(self, capsys):
        main(["query", "select r_name from region", "--sf", "0.1", "--explain"])
        out = capsys.readouterr().out
        assert "PhysTableScan" in out

    def test_failed_query_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "query",
                "create view v as select r_name from region",
                "--sf", "0.1",
            ])
        assert "unsupported" in capsys.readouterr().out

    def test_failures_command(self, capsys):
        main(["failures", "--sf", "0.1"])
        out = capsys.readouterr().out
        assert "planning_failed" in out
        assert "planner_defect" in out

    def test_ssb_query(self, capsys):
        main([
            "query", "select count(*) from supplier", "--bench", "ssb",
            "--sf", "0.1",
        ])
        assert "1 rows" in capsys.readouterr().out

    def test_query_no_plan_cache_matches_default(self, capsys):
        main(["query", "select count(*) from region", "--sf", "0.1"])
        cached = capsys.readouterr().out
        main([
            "query", "select count(*) from region", "--sf", "0.1",
            "--no-plan-cache",
        ])
        assert capsys.readouterr().out == cached

    def test_adaptive_command_reports_savings(self, capsys):
        main([
            "adaptive", "--sf", "0.05", "--limit", "2", "--repeats", "2",
        ])
        out = capsys.readouterr().out
        assert "adaptive bench: IC+ @ 4 sites" in out
        assert "rows stable across repeats: yes" in out
        assert "ticks(1st)" in out


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.queries == "tpch"
        assert args.tenants == 2
        assert args.policy == "fifo"
        assert args.arrivals == "poisson"
        assert args.smoke is False

    def test_query_columnar_backend_matches_row(self, capsys):
        sql = (
            "select l_returnflag, count(*) from lineitem "
            "group by l_returnflag order by l_returnflag"
        )
        main(["query", sql, "--sf", "0.05"])
        row_out = capsys.readouterr().out
        main(["query", sql, "--sf", "0.05", "--backend", "columnar"])
        col_out = capsys.readouterr().out
        # Same rows, and — the cost-model contract — the same simulated
        # milliseconds printed in the footer.
        assert col_out == row_out

    def test_colbench_gate(self, capsys, tmp_path):
        """A tiny colbench run: artefact must validate (identical rows,
        bit-identical makespans across backends) or `main` exits
        non-zero."""
        import json

        out_path = tmp_path / "colbench.json"
        main([
            "colbench", "--queries", "Q6", "--sf", "0.01",
            "--repeats", "1", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "geomean speedup" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-colbench/v1"
        assert payload["queries"][0]["query"] == "Q6"
        assert payload["queries"][0]["results_match"] is True

    def test_serve_smoke_gate(self, capsys, tmp_path):
        """The tier-1 gate: a tiny serving run whose SLO artefact must
        validate — `main` exits non-zero (SystemExit) on any schema
        violation, so this test failing means the gate fired."""
        import json

        out_path = tmp_path / "slo.json"
        main(["serve", "--smoke", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "serve smoke: artefact valid" in out
        assert "p99" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-serve-bench/v1"
        assert "IC+" in payload["systems"]

    def test_midquery_smoke_gate(self, capsys, tmp_path):
        """The midquery gate: a tiny skewed run whose artefact must be
        differentially clean (adaptive rows order-identical to static,
        oracle match, >= 1 replan fired) or `main` exits non-zero."""
        import json

        out_path = tmp_path / "midquery.json"
        main(["midquery", "--smoke", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "midquery smoke: artefact valid" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-midquery/v1"
        assert payload["total_replans"] >= 1
        for row in payload["queries"]:
            assert row["results_match"] is True
            assert row["oracle_match"] is True

    def test_sketchbench_smoke_gate(self, capsys, tmp_path):
        """The sketchbench gate: a tiny histograms-vs-sketches run whose
        artefact must be differentially clean (sketch rows order-identical
        to histogram rows, oracle match, >= 1 plan flip) and whose skewed
        TPC-H p95 join q-error strictly improves, or `main` exits
        non-zero."""
        import json

        out_path = tmp_path / "sketchbench.json"
        main(["sketchbench", "--smoke", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "sketchbench smoke: artefact valid" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-sketchbench/v1"
        assert payload["total_plan_flips"] >= 1
        assert payload["tpch_p95_join_improved"] is True
        assert (
            payload["tpch_join_p95_sketches"]
            < payload["tpch_join_p95_histograms"]
        )
        for row in payload["queries"]:
            assert row["results_match"] is True
            assert row["oracle_match"] is True

    def test_fedbench_smoke_gate(self, capsys, tmp_path):
        """The fedbench gate: a tiny cross-source run whose artefact must
        be differentially clean (every cell order-identical to the
        reference executor across both backends), show pushdown absorbed
        at the source, carry >= 1 plan-digest flip, and replay the chaos
        cell row-correct — or `main` exits non-zero."""
        import json

        out_path = tmp_path / "fedbench.json"
        main(["fedbench", "--smoke", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "fedbench smoke: artefact valid" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro-fedbench/v1"
        assert payload["adapters"] == {
            "emp": "native", "sales": "columnfile", "dept": "remote",
        }
        assert any(f["flipped"] for f in payload["plan_flips"])
        assert any(
            p["rows_out"] < p["rows_scanned"] for p in payload["pushdown"]
        )
        for cell in payload["cells"]:
            assert cell["rows_match"] is True
        assert payload["chaos"]["rows_match"] is True

    def test_fedbench_unknown_query_exits_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fedbench", "--queries", "FB99"])
        assert excinfo.value.code == 64
        assert "bad fedbench parameters" in capsys.readouterr().out
