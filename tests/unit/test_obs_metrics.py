"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    q_error,
    reset_registry,
)

pytestmark = pytest.mark.obs


def test_counters_accumulate_per_label_set():
    reg = MetricsRegistry()
    reg.inc("rows", 10, op="scan")
    reg.inc("rows", 5, op="scan")
    reg.inc("rows", 3, op="join")
    reg.inc("rows")  # unlabelled series is distinct
    assert reg.counter("rows", op="scan") == 15
    assert reg.counter("rows", op="join") == 3
    assert reg.counter("rows") == 1
    assert reg.counter("rows", op="absent") == 0


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    reg.inc("x", 1, a="1", b="2")
    reg.inc("x", 1, b="2", a="1")
    assert reg.counter("x", a="1", b="2") == 2
    assert list(reg.snapshot()) == ["x{a=1,b=2}"]


def test_gauges_last_write_and_high_water():
    reg = MetricsRegistry()
    reg.set_gauge("level", 5.0)
    reg.set_gauge("level", 2.0)
    assert reg.gauge("level") == 2.0
    reg.gauge_max("peak", 5.0)
    reg.gauge_max("peak", 2.0)
    reg.gauge_max("peak", 9.0)
    assert reg.gauge("peak") == 9.0
    assert reg.gauge("absent") is None


def test_histograms_summarise():
    reg = MetricsRegistry()
    for v in (2.0, 8.0, 5.0):
        reg.observe("latency", v, query="q1")
    summary = reg.histogram("latency", query="q1")
    assert summary.count == 3
    assert summary.total == 15.0
    assert summary.min == 2.0
    assert summary.max == 8.0
    assert summary.mean == 5.0
    assert reg.histogram("latency", query="other").count == 0


def test_snapshot_is_flat_sorted_and_expands_histograms():
    reg = MetricsRegistry()
    reg.inc("b.counter", 2)
    reg.set_gauge("a.gauge", 7.0, site="0")
    reg.observe("c.hist", 4.0)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["b.counter"] == 2
    assert snap["a.gauge{site=0}"] == 7.0
    assert snap["c.hist_count"] == 1.0
    assert snap["c.hist_sum"] == 4.0
    assert snap["c.hist_min"] == 4.0
    assert snap["c.hist_max"] == 4.0


def test_delta_since_subtracts_counters_and_omits_unchanged():
    reg = MetricsRegistry()
    reg.inc("moved", 10)
    reg.inc("still", 1)
    before = reg.snapshot()
    reg.inc("moved", 7)
    reg.inc("fresh", 2)
    delta = reg.delta_since(before)
    assert delta["moved"] == 7
    assert delta["fresh"] == 2
    assert "still" not in delta


def test_delta_since_keeps_current_value_for_min_max():
    reg = MetricsRegistry()
    reg.observe("h", 5.0)
    before = reg.snapshot()
    reg.observe("h", 2.0)
    delta = reg.delta_since(before)
    assert delta["h_count"] == 1.0  # one new observation
    assert delta["h_sum"] == 2.0
    assert delta["h_min"] == 2.0  # point-in-time, not a difference
    assert "h_max" not in delta  # max did not change


def test_reset_clears_everything():
    reg = MetricsRegistry()
    reg.inc("c")
    reg.set_gauge("g", 1.0)
    reg.observe("h", 1.0)
    reg.reset()
    assert reg.snapshot() == {}


def test_q_error_definition():
    assert q_error(100, 100) == 1.0
    assert q_error(10, 100) == 10.0
    assert q_error(100, 10) == 10.0
    # both sides floored at one row
    assert q_error(0, 0) == 1.0
    assert q_error(0.2, 1) == 1.0
    assert q_error(5, 0) == 5.0


# -- registry isolation (the autouse conftest fixture) ------------------------
#
# This pair fails without the per-test reset: the first test writes to the
# process-wide registry, the second asserts it starts empty.  Order is
# file order, which pytest preserves.


def test_registry_leak_canary_writes():
    get_registry().inc("leak.canary", 41)
    assert get_registry().counter("leak.canary") == 41


def test_registry_leak_canary_sees_clean_registry():
    assert get_registry().counter("leak.canary") == 0
    assert get_registry().snapshot() == {}


def test_reset_registry_clears_global():
    get_registry().inc("x")
    reset_registry()
    assert get_registry().snapshot() == {}


# -- histogram percentiles (serving-layer SLO math) ---------------------------


def test_percentile_empty_histogram_raises():
    from repro.obs.metrics import HistogramSummary

    with pytest.raises(ValueError):
        HistogramSummary().percentile(0.5)


def test_percentile_rejects_out_of_range_q():
    from repro.obs.metrics import HistogramSummary

    summary = HistogramSummary()
    summary.observe(1.0)
    with pytest.raises(ValueError):
        summary.percentile(-0.01)
    with pytest.raises(ValueError):
        summary.percentile(1.01)


def test_percentile_single_sample_is_that_sample():
    from repro.obs.metrics import HistogramSummary

    summary = HistogramSummary()
    summary.observe(3.25)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert summary.percentile(q) == 3.25


def test_percentile_q0_and_q1_are_min_and_max():
    from repro.obs.metrics import HistogramSummary

    summary = HistogramSummary()
    for v in (5.0, 1.0, 9.0, 3.0):
        summary.observe(v)
    assert summary.percentile(0.0) == 1.0
    assert summary.percentile(1.0) == 9.0


def test_percentile_linear_interpolation():
    from repro.obs.metrics import HistogramSummary

    summary = HistogramSummary()
    for v in (10.0, 20.0, 30.0, 40.0):
        summary.observe(v)
    # position = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
    assert summary.percentile(0.5) == pytest.approx(25.0)
    assert summary.percentile(0.25) == pytest.approx(17.5)


def test_percentile_insertion_order_irrelevant():
    from repro.obs.metrics import HistogramSummary

    a, b = HistogramSummary(), HistogramSummary()
    for v in (3.0, 1.0, 2.0):
        a.observe(v)
    for v in (1.0, 2.0, 3.0):
        b.observe(v)
    assert a.percentile(0.75) == b.percentile(0.75)


def test_histogram_count_tracks_observations():
    from repro.obs.metrics import HistogramSummary

    summary = HistogramSummary()
    assert summary.count == 0
    summary.observe(1.0)
    summary.observe(2.0)
    assert summary.count == 2


# -- tenant attribution scopes ------------------------------------------------


def test_tenant_labels_empty_outside_scope():
    from repro.obs.metrics import current_tenant, tenant_labels

    assert tenant_labels() == {}
    assert current_tenant() is None


def test_tenant_scope_attaches_label():
    from repro.obs.metrics import current_tenant, tenant_labels, tenant_scope

    with tenant_scope("acme"):
        assert current_tenant() == "acme"
        assert tenant_labels() == {"tenant": "acme"}
    assert tenant_labels() == {}


def test_tenant_scopes_nest_innermost_wins():
    from repro.obs.metrics import current_tenant, tenant_scope

    with tenant_scope("outer"):
        with tenant_scope("inner"):
            assert current_tenant() == "inner"
        assert current_tenant() == "outer"


def test_tenant_scope_none_is_noop():
    from repro.obs.metrics import current_tenant, tenant_scope

    with tenant_scope(None):
        assert current_tenant() is None


def test_reset_tenant_scope_clears_stack():
    from repro.obs.metrics import (
        current_tenant,
        reset_tenant_scope,
        tenant_scope,
    )

    scope = tenant_scope("stuck")
    scope.__enter__()
    reset_tenant_scope()
    assert current_tenant() is None
