"""Shared test utilities.

``naive_execute`` is an independent, deliberately simple interpreter for
*logical* plans — scans read whole tables, joins are nested loops, no
distribution, no optimisation.  It serves as the correctness oracle for
differential tests: whatever the optimised, fragmented, distributed engine
returns must match what this ten-line-per-operator evaluator returns.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.exec.aggregates import AggregateEvaluator
from repro.exec.operators import sort_rows
from repro.rel.expr import compile_expr
from repro.rel.logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalSort,
    LogicalTableScan,
    LogicalValues,
    RelNode,
)
from repro.storage.store import DataStore


def naive_execute(node: RelNode, store: DataStore) -> List[Tuple]:
    """Evaluate a logical plan with zero cleverness."""
    if isinstance(node, LogicalTableScan):
        data = store.table(node.table)
        rows: List[Tuple] = []
        for partition in data.partitions:
            rows.extend(partition)
        return rows
    if isinstance(node, LogicalValues):
        return list(node.rows)
    if isinstance(node, LogicalFilter):
        rows = naive_execute(node.input, store)
        predicate = compile_expr(node.condition)
        return [r for r in rows if predicate(r)]
    if isinstance(node, LogicalProject):
        rows = naive_execute(node.input, store)
        fns = [compile_expr(e) for e in node.exprs]
        return [tuple(fn(r) for fn in fns) for r in rows]
    if isinstance(node, LogicalJoin):
        left = naive_execute(node.left, store)
        right = naive_execute(node.right, store)
        predicate = (
            compile_expr(node.condition) if node.condition is not None else None
        )
        out: List[Tuple] = []
        pad = (None,) * node.right.width
        for lrow in left:
            matched = False
            for rrow in right:
                combined = lrow + rrow
                if predicate is None or predicate(combined):
                    matched = True
                    if node.join_type.projects_right:
                        out.append(combined)
                    else:
                        break
            if node.join_type is JoinType.SEMI and matched:
                out.append(lrow)
            elif node.join_type is JoinType.ANTI and not matched:
                out.append(lrow)
            elif node.join_type is JoinType.LEFT and not matched:
                out.append(lrow + pad)
        return out
    if isinstance(node, LogicalAggregate):
        rows = naive_execute(node.input, store)
        evaluator = AggregateEvaluator(node.agg_calls)
        groups: Dict[Tuple, list] = {}
        for row in rows:
            key = tuple(row[k] for k in node.group_keys)
            acc = groups.get(key)
            if acc is None:
                acc = evaluator.new_group()
                groups[key] = acc
            evaluator.accumulate(acc, row)
        if not node.group_keys and not groups:
            groups[()] = evaluator.new_group()
        return [key + evaluator.results(acc) for key, acc in groups.items()]
    if isinstance(node, LogicalSort):
        rows = naive_execute(node.input, store)
        if node.sort_keys:
            rows = sort_rows(rows, node.sort_keys)
        if node.fetch is not None:
            rows = rows[: node.fetch]
        return rows
    raise TypeError(f"naive_execute cannot handle {type(node).__name__}")


def normalise(rows: Sequence[Tuple], ordered: bool = False) -> List[Tuple]:
    """Canonical form for result comparison (rounding floats)."""

    def canon(value):
        if isinstance(value, float):
            return round(value, 6)
        return value

    canonical = [tuple(canon(v) for v in row) for row in rows]
    if ordered:
        return canonical
    return sorted(canonical, key=repr)


# ---------------------------------------------------------------------------
# A tiny reusable test database
# ---------------------------------------------------------------------------

EMP_COLUMNS = [
    Column("emp_id", ColumnType.INTEGER),
    Column("dept_id", ColumnType.INTEGER),
    Column("name", ColumnType.VARCHAR),
    Column("salary", ColumnType.DOUBLE),
    Column("hired", ColumnType.DATE),
]

DEPT_COLUMNS = [
    Column("dept_id", ColumnType.INTEGER),
    Column("dept_name", ColumnType.VARCHAR),
    Column("budget", ColumnType.DOUBLE),
]

SALES_COLUMNS = [
    Column("sale_id", ColumnType.INTEGER),
    Column("emp_id", ColumnType.INTEGER),
    Column("amount", ColumnType.DOUBLE),
    Column("region", ColumnType.VARCHAR),
]


def make_company_store(
    sites: int = 4,
    employees: int = 120,
    departments: int = 8,
    sales: int = 500,
    seed: int = 5,
    partitions: int = 8,
    dept_skew: float = 0.0,
    sales_skew: float = 0.0,
    correlated_regions: bool = False,
) -> DataStore:
    """A small three-table database exercising joins and aggregates.

    ``dept_skew`` / ``sales_skew`` put that fraction of employees into
    department 1 / of sales onto employee 1 (a Zipf-like hot key that
    wrecks uniform-selectivity estimates); ``correlated_regions`` makes
    ``sales.region`` a pure function of ``emp_id`` instead of an
    independent draw, so a region predicate correlates with the join
    key.  All three default off and are applied as seeded post-passes,
    so the base dataset is byte-identical to the knob-free one.
    """
    rng = random.Random(seed)
    store = DataStore(site_count=sites, partitions_per_table=partitions)
    dept_rows = [
        (d, f"dept{d}", round(rng.uniform(1e4, 9e4), 2))
        for d in range(1, departments + 1)
    ]
    emp_rows = [
        (
            e,
            rng.randrange(1, departments + 1),
            f"emp{e}",
            round(rng.uniform(3e4, 2e5), 2),
            f"{rng.randrange(1990, 2024)}-{rng.randrange(1, 13):02d}-15",
        )
        for e in range(1, employees + 1)
    ]
    sales_rows = [
        (
            s,
            rng.randrange(1, employees + 1),
            round(rng.uniform(10, 5000), 2),
            rng.choice(["north", "south", "east", "west"]),
        )
        for s in range(1, sales + 1)
    ]
    if dept_skew:
        skew_rng = random.Random(seed ^ 0x5EED)
        emp_rows = [
            (e, 1, name, salary, hired)
            if skew_rng.random() < dept_skew
            else (e, d, name, salary, hired)
            for (e, d, name, salary, hired) in emp_rows
        ]
    if sales_skew:
        skew_rng = random.Random(seed ^ 0x5A1E)
        sales_rows = [
            (s, 1, amount, region)
            if skew_rng.random() < sales_skew
            else (s, e, amount, region)
            for (s, e, amount, region) in sales_rows
        ]
    if correlated_regions:
        regions = ["north", "south", "east", "west"]
        sales_rows = [
            (s, e, amount, regions[e % 4])
            for (s, e, amount, _region) in sales_rows
        ]
    store.create_table(
        TableSchema("dept", DEPT_COLUMNS, ["dept_id"], replicated=True),
        dept_rows,
    )
    store.create_table(TableSchema("emp", EMP_COLUMNS, ["emp_id"]), emp_rows)
    store.create_table(
        TableSchema(
            "sales", SALES_COLUMNS, ["sale_id"], affinity_key="sale_id"
        ),
        sales_rows,
    )
    store.create_index("emp", "emp_pk", ["emp_id"])
    store.create_index("sales", "sales_emp", ["emp_id"])
    return store


def make_company_cluster(config, **data_knobs):
    """An IgniteCalciteCluster over the company data set.

    ``data_knobs`` pass through to :func:`make_company_store` (e.g.
    ``sales_skew=0.9`` for the mid-query re-optimization scenarios).
    """
    from repro.core.cluster import IgniteCalciteCluster

    cluster = IgniteCalciteCluster(config)
    source = make_company_store(
        sites=config.sites,
        partitions=config.partitions_per_table,
        **data_knobs,
    )
    for name in source.table_names():
        data = source.table(name)
        rows = [row for part in data.partitions for row in part]
        cluster.create_table(_clone_schema(data.schema), rows)
    cluster.create_index("emp", "emp_pk", ["emp_id"])
    cluster.create_index("sales", "sales_emp", ["emp_id"])
    return cluster


def _clone_schema(schema: TableSchema) -> TableSchema:
    return TableSchema(
        schema.name,
        schema.columns,
        schema.primary_key,
        affinity_key=schema.affinity_key,
        replicated=schema.replicated,
        adapter=schema.adapter,
    )


def make_federated_store(
    sites: int = 4,
    partitions: int = 8,
    seed: int = 5,
    **data_knobs,
) -> DataStore:
    """The company data set spread across all three storage adapters.

    ``emp`` stays on the native row store, ``sales`` moves to the
    columnar file adapter and ``dept`` (replicated) to the simulated
    remote catalog — so any emp/sales/dept join is a cross-source
    federated query.  Row contents are byte-identical to
    :func:`make_company_store` with the same knobs.
    """
    source = make_company_store(
        sites=sites, partitions=partitions, seed=seed, **data_knobs
    )
    store = DataStore(site_count=sites, partitions_per_table=partitions)
    adapters = {"emp": "native", "sales": "columnfile", "dept": "remote"}
    for name in source.table_names():
        data = source.table(name)
        rows = [row for part in data.partitions for row in part]
        schema = TableSchema(
            data.schema.name,
            data.schema.columns,
            data.schema.primary_key,
            affinity_key=data.schema.affinity_key,
            replicated=data.schema.replicated,
            adapter=adapters[name],
        )
        store.create_table(schema, rows)
    store.create_index("emp", "emp_pk", ["emp_id"])
    return store
