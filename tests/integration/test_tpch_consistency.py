"""TPC-H cross-system result consistency.

Different plans (merge vs hash joins, single-site vs distributed, single
vs dual-threaded) must produce the same answers.  Floating-point sums are
compared after rounding because accumulation order differs across plans.
"""

import pytest

from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

from helpers import normalise

SF = 0.2

#: Queries whose ORDER BY fully determines row order (ties broken).
FULLY_ORDERED = {1, 4, 12}


@pytest.fixture(scope="module")
def clusters():
    return {
        "IC": load_tpch_cluster(SystemConfig.ic(4), SF),
        "IC+": load_tpch_cluster(SystemConfig.ic_plus(4), SF),
        "IC+M": load_tpch_cluster(SystemConfig.ic_plus_m(4), SF),
        "IC+@8": load_tpch_cluster(SystemConfig.ic_plus(8), SF),
    }


@pytest.mark.parametrize("qid", ENABLED_QUERY_IDS)
def test_results_agree_across_systems(qid, clusters):
    results = {}
    for system, cluster in clusters.items():
        outcome = cluster.try_sql(QUERIES[qid].sql)
        if outcome.ok:
            results[system] = normalise(
                outcome.rows, ordered=qid in FULLY_ORDERED
            )
    # IC+ always completes; compare everyone who did.
    assert "IC+" in results
    reference = results["IC+"]
    for system, rows in results.items():
        assert rows == reference, (qid, system)


def test_row_counts_scale_with_data():
    small = load_tpch_cluster(SystemConfig.ic_plus(4), 0.1)
    large = load_tpch_cluster(SystemConfig.ic_plus(4), 0.4)
    q6_small = small.sql(QUERIES[6].sql).rows[0][0]
    q6_large = large.sql(QUERIES[6].sql).rows[0][0]
    assert q6_large > q6_small  # revenue grows with scale factor


def test_q1_aggregates_are_exact():
    """Q1 against a direct computation over the generated rows."""
    from repro.bench.tpch import cached_tpch_data

    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), SF)
    rows = cluster.sql(QUERIES[1].sql).rows
    lineitem = cached_tpch_data(SF)["lineitem"]
    expected = {}
    for li in lineitem:
        if li[10] <= "1998-09-02":
            key = (li[8], li[9])
            bucket = expected.setdefault(key, [0.0, 0.0, 0])
            bucket[0] += li[4]
            bucket[1] += li[5]
            bucket[2] += 1
    assert len(rows) == len(expected)
    for row in rows:
        key = (row[0], row[1])
        assert row[2] == pytest.approx(expected[key][0])
        assert row[3] == pytest.approx(expected[key][1])
        assert row[9] == expected[key][2]


def test_q6_revenue_is_exact():
    from repro.bench.tpch import cached_tpch_data

    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), SF)
    got = cluster.sql(QUERIES[6].sql).rows[0][0]
    lineitem = cached_tpch_data(SF)["lineitem"]
    expected = sum(
        li[5] * li[6]
        for li in lineitem
        if "1994-01-01" <= li[10] < "1995-01-01"
        and 0.05 <= li[6] <= 0.07
        and li[4] < 24
    )
    assert got == pytest.approx(expected)


def test_q22_matches_direct_computation():
    from repro.bench.tpch import cached_tpch_data

    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), SF)
    rows = cluster.sql(QUERIES[22].sql).rows
    data = cached_tpch_data(SF)
    customers = data["customer"]
    with_orders = {o[1] for o in data["orders"]}
    codes = {"13", "31", "23", "29", "30", "18", "17"}
    eligible = [
        c for c in customers if c[4][:2] in codes and c[5] > 0.0
    ]
    avg_balance = sum(c[5] for c in eligible) / len(eligible)
    expected = {}
    for c in customers:
        code = c[4][:2]
        if code in codes and c[5] > avg_balance and c[0] not in with_orders:
            bucket = expected.setdefault(code, [0, 0.0])
            bucket[0] += 1
            bucket[1] += c[5]
    assert len(rows) == len(expected)
    for code, count, total in rows:
        assert expected[code][0] == count
        assert expected[code][1] == pytest.approx(total)
