"""End-to-end tests: SQL in, correct rows out, on every system variant.

Every query is checked against the naive logical-plan oracle, so these
tests cover the whole pipeline: parser, converter, both planning stages,
fragmentation, distributed execution and result collection.
"""

import pytest

from repro.common.config import SystemConfig
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

from helpers import make_company_cluster, naive_execute, normalise

CONFIGS = [SystemConfig.ic(), SystemConfig.ic_plus(), SystemConfig.ic_plus_m()]

QUERIES = {
    "projection": "select name, salary from emp where salary > 100000",
    "expression": "select emp_id, salary * 1.1 as raised from emp where dept_id = 3",
    "between": "select emp_id from emp where salary between 50000 and 60000",
    "in_list": "select emp_id from emp where dept_id in (1, 2, 3)",
    "like": "select name from emp where name like 'emp1%'",
    "order_limit": "select emp_id, salary from emp order by salary desc limit 5",
    "distinct": "select distinct dept_id from emp",
    "scalar_agg": "select count(*), sum(salary), avg(salary), min(salary), max(salary) from emp",
    "group_by": (
        "select dept_id, count(*) as cnt, sum(salary) as total "
        "from emp group by dept_id order by dept_id"
    ),
    "having": (
        "select dept_id, count(*) as cnt from emp group by dept_id "
        "having count(*) > 10 order by cnt desc, dept_id"
    ),
    "join": (
        "select e.name, d.dept_name from emp e, dept d "
        "where e.dept_id = d.dept_id and e.salary > 180000"
    ),
    "three_way_join": (
        "select d.dept_name, sum(s.amount) as revenue "
        "from dept d, emp e, sales s "
        "where d.dept_id = e.dept_id and e.emp_id = s.emp_id "
        "group by d.dept_name order by revenue desc"
    ),
    "left_join": (
        "select e.emp_id, count(s.sale_id) as n "
        "from emp e left join sales s on e.emp_id = s.emp_id "
        "group by e.emp_id order by n desc, e.emp_id limit 10"
    ),
    "exists": (
        "select e.emp_id from emp e where exists "
        "(select * from sales s where s.emp_id = e.emp_id and s.amount > 4500)"
    ),
    "not_exists": (
        "select count(*) from emp e where not exists "
        "(select * from sales s where s.emp_id = e.emp_id)"
    ),
    "in_subquery": (
        "select name from emp where dept_id in "
        "(select dept_id from dept where budget > 50000)"
    ),
    "scalar_subquery": (
        "select count(*) from emp where salary > (select avg(salary) from emp)"
    ),
    "correlated_scalar": (
        "select e.emp_id from emp e where e.salary / 40 > "
        "(select avg(s.amount) from sales s where s.emp_id = e.emp_id)"
    ),
    "case_in_agg": (
        "select dept_id, sum(case when salary > 100000 then 1 else 0 end) "
        "as highly_paid from emp group by dept_id order by dept_id"
    ),
    "group_by_expression": (
        "select extract(year from hired), count(*) from emp "
        "group by extract(year from hired) order by 1"
    ),
}

ORDERED = {"order_limit", "group_by", "having", "three_way_join", "left_join",
           "case_in_agg", "group_by_expression"}


@pytest.fixture(scope="module")
def clusters():
    return {c.name: make_company_cluster(c) for c in CONFIGS}


@pytest.fixture(scope="module")
def oracle_store():
    from helpers import make_company_store

    return make_company_store()


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_matches_oracle_on_all_systems(name, clusters, oracle_store):
    sql = QUERIES[name]
    logical = SqlToRelConverter(oracle_store.catalog).convert(parse(sql))
    expected = normalise(naive_execute(logical, oracle_store), name in ORDERED)
    for system, cluster in clusters.items():
        outcome = cluster.try_sql(sql)
        assert outcome.ok, (system, name, outcome.status, outcome.error)
        got = normalise(outcome.rows, name in ORDERED)
        assert got == expected, (system, name)


def test_simulated_latency_is_positive(clusters):
    result = clusters["IC+"].sql(QUERIES["three_way_join"])
    assert result.simulated_seconds > 0
    assert result.total_units > 0
    assert result.task_graph.tasks


def test_explain_renders_physical_plan(clusters):
    text = clusters["IC+"].explain(QUERIES["join"])
    assert "PhysTableScan" in text or "PhysIndexScan" in text


def test_eight_site_cluster_agrees(oracle_store):
    config = SystemConfig.ic_plus(sites=8)
    cluster = make_company_cluster(config)
    sql = QUERIES["three_way_join"]
    logical = SqlToRelConverter(oracle_store.catalog).convert(parse(sql))
    expected = normalise(naive_execute(logical, oracle_store), True)
    assert normalise(cluster.sql(sql).rows, True) == expected


def test_network_accounting_tracks_shipping(clusters):
    result = clusters["IC+"].sql(QUERIES["join"])
    assert result.rows_shipped >= 0
    assert result.network_units >= 0
