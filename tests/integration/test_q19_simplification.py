"""Section 5.2: join-condition simplification rescues TPC-H Q19.

On the baseline, Q19's OR-of-ANDs predicate leaves no extractable equi
key, forcing a nested-loop join over LINEITEM x PART that exceeds the
runtime limit.  The new rule factors ``p_partkey = l_partkey`` (and the
other shared conjuncts) out of the OR, after which the planner picks a
hash join and the query finishes quickly.
"""

import pytest

from repro.bench.tpch import QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig
from repro.core.cluster import QueryStatus
from repro.exec.physical import PhysHashJoin, PhysNestedLoopJoin, walk_physical
from repro.planner.rules import JoinConditionSimplificationRule
from repro.rel.logical import LogicalJoin, walk

SF = 0.5


def test_baseline_q19_times_out():
    ic = load_tpch_cluster(SystemConfig.ic(4), SF)
    assert ic.try_sql(QUERIES[19].sql).status is QueryStatus.TIMEOUT


def test_simplification_alone_rescues_q19():
    """IC + only the Section 5.2 rule (plus the hash join to exploit the
    extracted key) completes Q19."""
    config = SystemConfig.ic(4).with_(
        join_condition_simplification=True, hash_join=True
    )
    cluster = load_tpch_cluster(config, SF)
    outcome = cluster.try_sql(QUERIES[19].sql)
    assert outcome.ok, outcome.status


def test_ic_plus_q19_uses_equi_join():
    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), SF)
    plan = cluster.plan_sql(QUERIES[19].sql)
    joins = [n for n in walk_physical(plan) if isinstance(n, PhysHashJoin)]
    nljs = [n for n in walk_physical(plan) if isinstance(n, PhysNestedLoopJoin)]
    assert joins, "Q19 should use the extracted equi key for a hash join"
    assert not nljs


def test_rule_extracts_the_common_equi_conjunct():
    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), 0.1)
    logical = cluster.parse_to_logical(QUERIES[19].sql)
    # Before optimisation, the whole predicate sits above a cross join.
    rule = JoinConditionSimplificationRule()
    rewritten = None
    for node in walk(logical):
        result = rule.apply(node)
        if result is not None:
            rewritten = result
            break
    assert rewritten is not None


def test_results_match_between_variants():
    improved = load_tpch_cluster(SystemConfig.ic_plus(4), 0.1)
    multi = load_tpch_cluster(SystemConfig.ic_plus_m(4), 0.1)
    a = improved.sql(QUERIES[19].sql).rows
    b = multi.sql(QUERIES[19].sql).rows
    assert len(a) == len(b) == 1
    if a[0][0] is None:
        assert b[0][0] is None
    else:
        assert a[0][0] == pytest.approx(b[0][0])
