"""Integration tests for the multi-tenant serving subsystem.

Covers the PR's acceptance criteria: the single-query regression pin
(serving one query at a time reproduces solo makespans bit-exactly),
seeded determinism of the whole pipeline, plan-cache hits under
repeated-template traffic, and the overload scenario (bounded queue,
REJECTED outcomes, priority tenants seeing lower p99 than best-effort
tenants at the same arrival rate).
"""

from collections import Counter

import pytest

from helpers import make_company_cluster
from repro.common.config import SystemConfig
from repro.core.cluster import QueryStatus
from repro.serve import (
    ClosedLoopArrivals,
    PoissonArrivals,
    QueryServer,
    QueryTemplate,
    ServeError,
    SloReport,
    TenantSpec,
    validate_slo_artefact,
)

pytestmark = pytest.mark.serve

TEMPLATES = (
    QueryTemplate("count", "SELECT COUNT(*) FROM emp"),
    QueryTemplate(
        "join",
        "SELECT d.dept_name, COUNT(*) FROM emp e "
        "JOIN dept d ON e.dept_id = d.dept_id GROUP BY d.dept_name",
    ),
)


def _config(**overrides):
    base = dict(plan_cache=True, cardinality_feedback=True)
    base.update(overrides)
    return SystemConfig.ic_plus(**base)


def _tenants(rate=2.0, priority_gap=False):
    return [
        TenantSpec(
            "gold",
            TEMPLATES,
            PoissonArrivals(rate=rate),
            priority=2 if priority_gap else 0,
        ),
        TenantSpec(
            "bronze", TEMPLATES, PoissonArrivals(rate=rate), priority=0
        ),
    ]


class TestRegressionPin:
    def test_first_query_at_t0_is_bit_identical_to_solo(self):
        """A query served at t=0 reproduces today's makespan bit-exactly."""
        config = _config(
            plan_cache=False,
            cardinality_feedback=False,
            serve_max_concurrent=1,
        )
        solo = make_company_cluster(config).try_sql(
            TEMPLATES[0].sql
        ).simulated_seconds
        # A zero-think closed loop puts its first arrival at exactly 0.0.
        tenants = [
            TenantSpec(
                "pin",
                TEMPLATES[:1],
                ClosedLoopArrivals(clients=1, mean_think_seconds=0.0),
            )
        ]
        server = QueryServer(make_company_cluster(config), tenants, seed=0)
        result = server.run(1.0)
        first = result.completed[0]
        assert first.arrival == 0.0
        assert first.queue_wait == 0.0
        assert first.execution_seconds == solo  # bit-identical, not approx

    def test_serialized_serving_reproduces_solo_makespans(self):
        """concurrency=1, admission off: execution == today's makespans.

        Two pins per served query: bit-identical to a solo simulation of
        the same task graph submitted at the same instant (the shared
        simulator adds zero perturbation), and equal to today's
        ``try_sql`` makespan up to float re-association across arrival
        offsets.
        """
        from repro.cluster.scheduler import simulate_makespan_with_faults

        # No plan cache: the pin compares against fresh solo planning.
        config = _config(
            plan_cache=False,
            cardinality_feedback=False,
            serve_max_concurrent=1,
        )
        cluster = make_company_cluster(config)
        reference = make_company_cluster(config)
        solo = {t.name: reference.try_sql(t.sql) for t in TEMPLATES}
        server = QueryServer(cluster, _tenants(rate=1.0), seed=11)
        result = server.run(8.0)
        completed = result.completed
        assert completed
        for record in completed:
            outcome = solo[record.template]
            assert record.execution_seconds == pytest.approx(
                outcome.simulated_seconds, rel=1e-9, abs=1e-9
            )
            if record.queue_wait == 0.0:
                at_offset, _ = simulate_makespan_with_faults(
                    outcome.result.task_graph,
                    config.sites,
                    config.cores_per_site,
                    at=record.dispatched,
                )
                assert record.execution_seconds == at_offset  # bit-identical

    def test_solo_query_has_zero_queue_wait(self):
        config = _config(serve_max_concurrent=1)
        cluster = make_company_cluster(config)
        server = QueryServer(
            cluster,
            [TenantSpec("t", TEMPLATES[:1], PoissonArrivals(rate=0.1))],
            seed=3,
        )
        result = server.run(30.0)
        assert result.completed
        # At 0.1 qps with ~10ms queries nothing ever queues.
        assert all(r.queue_wait == 0.0 for r in result.completed)
        assert all(
            r.latency == r.execution_seconds for r in result.completed
        )


class TestDeterminism:
    def _run(self, seed):
        cluster = make_company_cluster(_config())
        server = QueryServer(cluster, _tenants(), seed=seed)
        return server.run(10.0)

    def test_same_seed_bit_identical(self):
        a, b = self._run(7), self._run(7)
        key = lambda r: (
            r.tenant,
            r.request_id,
            r.template,
            r.status,
            r.arrival,
            r.latency,
            r.queue_wait,
            r.execution_seconds,
        )
        assert [key(r) for r in a.records] == [key(r) for r in b.records]
        ra, rb = SloReport.from_result(a), SloReport.from_result(b)
        assert ra.to_dict() == rb.to_dict()

    def test_different_seed_differs(self):
        a, b = self._run(7), self._run(8)
        assert [r.arrival for r in a.records] != [
            r.arrival for r in b.records
        ]


class TestPlanCacheUnderTraffic:
    def test_repeated_templates_hit_the_cache(self):
        cluster = make_company_cluster(_config())
        server = QueryServer(cluster, _tenants(rate=3.0), seed=5)
        result = server.run(10.0)
        report = SloReport.from_result(result)
        assert report.overall.cache_hits > 0
        assert report.overall.cache_hit_rate > 0.0
        # First execution of each (template, literal) pair misses.
        assert report.overall.cache_misses >= len(TEMPLATES)

    def test_cache_disabled_means_no_hits(self):
        cluster = make_company_cluster(
            _config(plan_cache=False, cardinality_feedback=False)
        )
        server = QueryServer(cluster, _tenants(rate=3.0), seed=5)
        report = SloReport.from_result(server.run(10.0))
        assert report.overall.cache_hits == 0


class TestOverload:
    def test_bounded_queue_rejections_and_priority_p99(self):
        """Overload: queue stays bounded, REJECTED appear, gold p99 < bronze."""
        config = _config(
            serve_policy="priority",
            serve_max_concurrent=1,
            serve_queue_depth=6,
        )
        cluster = make_company_cluster(config)
        server = QueryServer(
            cluster, _tenants(rate=60.0, priority_gap=True), seed=13
        )
        result = server.run(5.0)
        report = SloReport.from_result(result)
        statuses = Counter(r.status for r in result.records)
        assert statuses[QueryStatus.REJECTED] > 0
        assert result.max_queue_depth <= 6
        gold, bronze = report.tenant("gold"), report.tenant("bronze")
        assert gold.completed > 0 and bronze.completed > 0
        assert gold.p99_seconds < bronze.p99_seconds
        assert gold.mean_queue_wait_seconds < bronze.mean_queue_wait_seconds
        assert validate_slo_artefact(report.to_dict()) == []

    def test_shedding_drops_stale_requests(self):
        config = _config(
            serve_max_concurrent=1,
            serve_shed_wait_seconds=0.05,
        )
        cluster = make_company_cluster(config)
        server = QueryServer(cluster, _tenants(rate=40.0), seed=2)
        result = server.run(3.0)
        shed = [r for r in result.records if r.reject_reason == "shed"]
        assert shed
        assert all(r.status is QueryStatus.REJECTED for r in shed)

    def test_wfq_respects_weights_under_load(self):
        config = _config(serve_policy="wfq", serve_max_concurrent=1)
        cluster = make_company_cluster(config)
        tenants = [
            TenantSpec(
                "heavy", TEMPLATES, PoissonArrivals(rate=40.0), weight=3.0
            ),
            TenantSpec(
                "light", TEMPLATES, PoissonArrivals(rate=40.0), weight=1.0
            ),
        ]
        server = QueryServer(cluster, tenants, seed=21)
        report = SloReport.from_result(server.run(4.0))
        heavy, light = report.tenant("heavy"), report.tenant("light")
        # Equal offered load, 3:1 weights: heavy completes more and waits
        # less than light.
        assert heavy.completed > light.completed
        assert heavy.mean_queue_wait_seconds < light.mean_queue_wait_seconds


class TestClosedLoop:
    def test_think_time_clients_sustain_traffic(self):
        cluster = make_company_cluster(_config())
        tenants = [
            TenantSpec(
                "terminals",
                TEMPLATES,
                ClosedLoopArrivals(clients=3, mean_think_seconds=0.5),
            )
        ]
        server = QueryServer(cluster, tenants, seed=9)
        result = server.run(10.0)
        assert len(result.completed) > 3  # clients resubmitted after thinking
        clients = {r.request_id for r in result.records}
        assert len(clients) == len(result.records)  # fresh id per request
        # Closed loop: at most `clients` queries ever in flight.
        assert result.max_queue_depth <= 3


class TestServerGuards:
    def test_rejects_fault_injected_cluster(self):
        # A cluster-level fault schedule would bypass the plan cache and
        # double-inject faults; serving-layer crashes go through the
        # shared simulator instead.
        from repro.faults.injector import parse_fault

        config = _config().with_(faults=(parse_fault("kill-site", "0@t=1.0"),))
        cluster = make_company_cluster(config)
        with pytest.raises(ServeError):
            QueryServer(cluster, _tenants())

    def test_rejects_empty_tenancy_and_bad_duration(self):
        cluster = make_company_cluster(_config())
        with pytest.raises(ServeError):
            QueryServer(cluster, [])
        server = QueryServer(cluster, _tenants())
        with pytest.raises(ServeError):
            server.run(0.0)

    def test_planning_failures_are_recorded_not_raised(self):
        cluster = make_company_cluster(_config())
        tenants = [
            TenantSpec(
                "bad",
                (QueryTemplate("broken", "SELECT * FROM nowhere"),),
                PoissonArrivals(rate=2.0),
            )
        ]
        server = QueryServer(cluster, tenants, seed=1)
        result = server.run(5.0)
        assert result.records
        assert all(
            r.status is QueryStatus.ERROR and not r.succeeded
            for r in result.records
        )


class TestServeMetrics:
    def test_tenant_labelled_serving_metrics(self):
        from repro.obs.metrics import get_registry

        cluster = make_company_cluster(_config())
        server = QueryServer(cluster, _tenants(rate=2.0), seed=4)
        result = server.run(8.0)
        registry = get_registry()
        for tenant in ("gold", "bronze"):
            done = sum(
                1 for r in result.completed if r.tenant == tenant
            )
            assert registry.counter("serve.arrivals", tenant=tenant) >= done
            assert (
                registry.counter(
                    "serve.completed", tenant=tenant, status="ok"
                )
                == done
            )
            hist = registry.histogram("serve.latency", tenant=tenant)
            assert hist.count == done

    def test_trace_spans_when_enabled(self):
        cluster = make_company_cluster(_config())
        server = QueryServer(
            cluster, _tenants(rate=1.0), seed=6, record_traces=True
        )
        result = server.run(6.0)
        record = result.completed[0]
        names = [s.name for s in record.trace.spans()]
        assert names == ["request", "queued", "admitted", "execute"]
        root = record.trace.roots[0]
        assert root.attrs["tenant"] == record.tenant
        assert root.duration == pytest.approx(record.latency)
