"""Golden-plan snapshot tests.

Every (query, system) cell's EXPLAIN output is pinned against a committed
snapshot under ``tests/golden/``, so any planner change that alters a plan
shows up as a readable diff.  EXPLAIN ANALYZE output (including actual
row counts, which the deterministic engine reproduces bit-identically) is
pinned for a smaller set of cells.

To accept intentional plan changes, regenerate the snapshots::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_plans.py \
        --snapshot-update
"""

import difflib
from pathlib import Path

import pytest

from repro.bench.tpch import QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

pytestmark = pytest.mark.obs

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: >= 8 queries that plan on every variant (Q2/Q5/Q9 exhaust IC's
#: planning budget and are covered by the failure-matrix tests instead).
QUERY_IDS = (1, 3, 4, 6, 10, 12, 13, 14)

SYSTEMS = ("IC", "IC+", "IC+M")

#: EXPLAIN ANALYZE cells: executed, so keep the grid small.
ANALYZE_CELLS = (("IC+M", 3), ("IC+M", 6), ("IC+", 3))

SCALE_FACTOR = 0.05


def _config(system: str) -> SystemConfig:
    return {
        "IC": SystemConfig.ic,
        "IC+": SystemConfig.ic_plus,
        "IC+M": SystemConfig.ic_plus_m,
    }[system](4)


@pytest.fixture(scope="module")
def clusters():
    return {
        system: load_tpch_cluster(_config(system), SCALE_FACTOR)
        for system in SYSTEMS
    }


def _check_snapshot(name: str, actual: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path.name}; "
            f"run pytest with --snapshot-update to create it"
        )
    expected = path.read_text(encoding="utf-8")
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="actual",
                lineterm="",
            )
        )
        pytest.fail(
            f"plan for {path.name} changed; if intentional, re-run with "
            f"--snapshot-update\n{diff}"
        )


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("qid", QUERY_IDS)
def test_explain_matches_golden(clusters, snapshot_update, system, qid):
    text = clusters[system].explain(QUERIES[qid].sql) + "\n"
    _check_snapshot(f"Q{qid}-{system}.explain.txt", text, snapshot_update)


@pytest.mark.parametrize("system,qid", ANALYZE_CELLS)
def test_explain_analyze_matches_golden(
    clusters, snapshot_update, system, qid
):
    text = clusters[system].explain_analyze(QUERIES[qid].sql) + "\n"
    _check_snapshot(f"Q{qid}-{system}.analyze.txt", text, snapshot_update)


def test_explain_is_deterministic_across_runs(clusters):
    sql = QUERIES[3].sql
    assert clusters["IC+M"].explain(sql) == clusters["IC+M"].explain(sql)


def test_explain_analyze_is_deterministic_across_runs(clusters):
    sql = QUERIES[6].sql
    first = clusters["IC+M"].explain_analyze(sql)
    second = clusters["IC+M"].explain_analyze(sql)
    assert first == second


def test_golden_grid_is_complete():
    """The committed snapshot set covers the whole advertised grid."""
    expected = {f"Q{q}-{s}.explain.txt" for q in QUERY_IDS for s in SYSTEMS}
    expected |= {f"Q{q}-{s}.analyze.txt" for s, q in ANALYZE_CELLS}
    present = {p.name for p in GOLDEN_DIR.glob("*.txt")}
    assert expected <= present, sorted(expected - present)
