"""SSB integration tests: correctness and the Section 6.4 exclusions."""

import pytest

from repro.bench.ssb import (
    FIGURE11_QUERY_IDS,
    SSB_QUERIES,
    cached_ssb_data,
    load_ssb_cluster,
)
from repro.common.config import SystemConfig

from helpers import normalise

SF = 0.2


@pytest.fixture(scope="module")
def clusters():
    return {
        "IC": load_ssb_cluster(SystemConfig.ic(4), SF),
        "IC+M": load_ssb_cluster(SystemConfig.ic_plus_m(4), SF),
    }


@pytest.mark.parametrize("qid", sorted(FIGURE11_QUERY_IDS))
def test_included_queries_agree_across_systems(qid, clusters):
    results = {}
    for system, cluster in clusters.items():
        outcome = cluster.try_sql(SSB_QUERIES[qid].sql)
        assert outcome.ok, (system, qid, outcome.status)
        results[system] = normalise(outcome.rows)
    assert results["IC"] == results["IC+M"], qid


def test_q11_revenue_is_exact(clusters):
    lineorder = cached_ssb_data(SF)["lineorder"]
    dates_1993 = {
        d[0] for d in cached_ssb_data(SF)["date_dim"] if d[4] == 1993
    }
    expected = sum(
        lo[9] * lo[11]
        for lo in lineorder
        if lo[5] in dates_1993 and 1 <= lo[11] <= 3 and lo[8] < 25
    )
    got = clusters["IC+M"].sql(SSB_QUERIES["Q1.1"].sql).rows[0][0]
    assert got == pytest.approx(expected)


class TestSection64Exclusions:
    """QS2 and QS4 are excluded from the paper's SSB test bench."""

    def test_exclusion_metadata(self):
        excluded = {q for q, s in SSB_QUERIES.items() if s.excluded}
        assert excluded == {"Q2.1", "Q2.2", "Q2.3", "Q4.1", "Q4.2", "Q4.3"}
        for qid in excluded:
            assert SSB_QUERIES[qid].notes

    def test_figure11_runs_flights_one_and_three_only(self):
        flights = {SSB_QUERIES[q].flight for q in FIGURE11_QUERY_IDS}
        assert flights == {1, 3}

    def test_qs4_fails_on_both_systems(self, clusters):
        """QS4's five-way join exceeds what either planner can handle: the
        permutation rules are disabled above three nested joins, leaving
        the unoptimisable textual join order to blow the runtime limit."""
        for system, cluster in clusters.items():
            outcome = cluster.try_sql(SSB_QUERIES["Q4.1"].sql)
            assert not outcome.ok, (system, outcome.status)


def test_lineorder_totals_consistent():
    data = cached_ssb_data(SF)
    by_order = {}
    for lo in data["lineorder"]:
        by_order.setdefault(lo[0], []).append(lo)
    for rows in by_order.values():
        total = round(sum(r[9] for r in rows), 2)
        assert all(r[10] == total for r in rows)
