"""CLI tests for the observability surface.

Covers ``repro-bench query --analyze`` / inline ``EXPLAIN [ANALYZE]``
statements, and the ``repro-bench trace`` subcommand: exit codes, the
``repro-trace/v1`` JSON schema, and the Chrome trace-event round trip.
"""

import json

import pytest

from repro.cli import EXIT_USAGE, main
from repro.obs.trace import TRACE_SCHEMA, validate_trace

pytestmark = pytest.mark.obs

SF = ["--sf", "0.02"]


class TestExplainAnalyze:
    def test_query_analyze_flag(self, capsys):
        main(["query", "select count(*) from region", "--analyze"] + SF)
        out = capsys.readouterr().out
        assert "RootFragment" in out
        assert "actual rows=" in out
        assert "q-err=" in out

    def test_explain_statement_inline(self, capsys):
        main(["query", "explain select r_name from region"] + SF)
        out = capsys.readouterr().out
        assert "PhysTableScan" in out
        assert "actual rows=" not in out  # plain EXPLAIN does not execute

    def test_explain_analyze_statement_inline(self, capsys):
        main(["query", "explain analyze select r_name from region"] + SF)
        out = capsys.readouterr().out
        assert "PhysTableScan" in out
        assert "actual rows=5" in out

    def test_explain_analyze_estimated_and_actual_side_by_side(self, capsys):
        main(
            ["query", "explain analyze select count(*) from orders"] + SF
        )
        out = capsys.readouterr().out
        assert "rows~" in out  # planner estimate
        assert "actual rows=" in out  # execution actuals


class TestTraceSubcommand:
    def test_trace_writes_valid_artefact(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        main(["trace", "Q6", "--out", str(out_file)] + SF)
        assert "trace written" in capsys.readouterr().out
        artefact = json.loads(out_file.read_text())
        assert artefact["schema"] == TRACE_SCHEMA
        assert artefact["query"] == "Q6"
        assert artefact["system"] == "IC+M"
        assert validate_trace(artefact) == []
        (root,) = artefact["spans"]
        assert root["name"] == "query"
        child_names = [c["name"] for c in root["children"]]
        assert child_names[0] == "parse"
        assert "volcano-physical" in child_names
        assert child_names[-1] == "execute"
        assert artefact["metrics"]["exec.queries"] == 1

    def test_trace_stdout_is_json(self, capsys):
        main(["trace", "Q6"] + SF)
        artefact = json.loads(capsys.readouterr().out)
        assert validate_trace(artefact) == []

    def test_trace_chrome_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        chrome_file = tmp_path / "chrome.json"
        main(
            ["trace", "Q6", "--out", str(out_file), "--chrome",
             str(chrome_file)] + SF
        )
        chrome = json.load(chrome_file.open())
        assert chrome["traceEvents"]
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])
        assert any(e["name"] == "execute" for e in chrome["traceEvents"])

    def test_unknown_tpch_query_exits_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "Q99"] + SF)
        assert excinfo.value.code == EXIT_USAGE
        assert "unknown tpch query" in capsys.readouterr().out

    def test_unknown_ssb_query_exits_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "nope", "--bench", "ssb"] + SF)
        assert excinfo.value.code == EXIT_USAGE

    def test_trace_accepts_bare_query_number(self, capsys):
        main(["trace", "6"] + SF)
        artefact = json.loads(capsys.readouterr().out)
        assert artefact["query"] == "Q6"

    def test_trace_system_flag(self, capsys):
        main(["trace", "Q6", "--system", "IC+"] + SF)
        artefact = json.loads(capsys.readouterr().out)
        assert artefact["system"] == "IC+"
