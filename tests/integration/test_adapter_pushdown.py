"""Adapter pushdown: golden EXPLAIN shapes and on/off row identity.

The positive cases pin EXPLAIN snapshots where the filter, project or
limit rides *inside* the adapter scan (``pushed[...]`` attributes); the
negative case shows a capability-declining adapter (columnfile declines
limit pushdown) keeping the engine-side operator — with identical rows
either way.  Every federated query is also executed with
``adapter_pushdown=False`` and diffed row-for-row against the pushdown
plan and the reference oracle, on both execution backends.
"""

import difflib
from pathlib import Path

import pytest

from repro.bench.fedbench import (
    FEDBENCH_QUERIES,
    load_fedbench_cluster,
)
from repro.common.config import PRESETS
from repro.planner.adapter_rules import AdapterLimitPushdown
from repro.rel.logical import LogicalProject, LogicalSort, LogicalTableScan
from repro.rel.expr import ColRef
from repro.verify.reference import ReferenceExecutor

pytestmark = pytest.mark.federation

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

SCALE_FACTOR = 0.05

#: (snapshot id, SQL) cells pinned as golden EXPLAIN snapshots.  FB6 shows
#: a pushed filter (remote), FB3 a pushed project (remote), FB4 a pushed
#: filter over the columnfile table; the two LIMIT cells are the
#: capability contrast — remote absorbs the fetch, columnfile declines it.
GOLDEN_CELLS = (
    ("FB3", FEDBENCH_QUERIES["FB3"]),
    ("FB4", FEDBENCH_QUERIES["FB4"]),
    ("FB6", FEDBENCH_QUERIES["FB6"]),
    ("LIMIT-remote", "select dept_id from dept limit 3"),
    ("LIMIT-columnfile", "select sale_id from sales limit 5"),
)

GOLDEN_SYSTEM = "IC+"


@pytest.fixture(scope="module")
def cluster():
    return load_fedbench_cluster(PRESETS[GOLDEN_SYSTEM](4), SCALE_FACTOR)


def _check_snapshot(name: str, actual: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path.name}; "
            f"run pytest with --snapshot-update to create it"
        )
    expected = path.read_text(encoding="utf-8")
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="actual",
                lineterm="",
            )
        )
        pytest.fail(
            f"plan for {path.name} changed; if intentional, re-run with "
            f"--snapshot-update\n{diff}"
        )


class TestGoldenExplain:
    @pytest.mark.parametrize("cell,sql", GOLDEN_CELLS)
    def test_explain_matches_golden(self, cluster, snapshot_update, cell, sql):
        text = cluster.explain(sql) + "\n"
        _check_snapshot(
            f"FED-{cell}-{GOLDEN_SYSTEM}.explain.txt", text, snapshot_update
        )

    def test_filter_rides_inside_remote_scan(self, cluster):
        text = cluster.explain(FEDBENCH_QUERIES["FB6"])
        assert "pushed[filter=" in text

    def test_project_rides_inside_remote_scan(self, cluster):
        text = cluster.explain(FEDBENCH_QUERIES["FB3"])
        assert "pushed[project=" in text

    def test_limit_rides_inside_remote_scan(self, cluster):
        text = cluster.explain("select dept_id from dept limit 3")
        assert "fetch=3" in text
        # The engine-side Limit is always retained: the pushed cap is a
        # per-partition over-approximation, never a correctness transfer.
        assert "PhysLimit" in text

    def test_columnfile_declines_limit_pushdown(self, cluster):
        """The negative case: sales lives on columnfile, whose capability
        flags decline limit pushdown — the fetch stays engine-side."""
        text = cluster.explain("select sale_id from sales limit 5")
        assert "pushed[fetch" not in text
        assert "fetch=" not in text.split("PhysTableScan", 1)[1]
        assert "PhysLimit" in text

    def test_golden_grid_is_complete(self):
        expected = {
            f"FED-{cell}-{GOLDEN_SYSTEM}.explain.txt"
            for cell, _ in GOLDEN_CELLS
        }
        present = {p.name for p in GOLDEN_DIR.glob("FED-*.txt")}
        assert expected <= present, sorted(expected - present)


def _canon(rows):
    """Round floats so SUM accumulation order (which pushdown legitimately
    changes) does not register as a row difference."""
    return [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]


class TestPushdownRowIdentity:
    """Pushdown is an optimisation, never a semantics change."""

    @pytest.fixture()
    def cluster_pair(self, execution_backend):
        base = PRESETS["IC+"](4).with_(execution_backend=execution_backend)
        on = load_fedbench_cluster(base, SCALE_FACTOR)
        off = load_fedbench_cluster(
            base.with_(adapter_pushdown=False), SCALE_FACTOR
        )
        return on, off

    @pytest.mark.parametrize("query", sorted(FEDBENCH_QUERIES))
    def test_rows_identical_with_pushdown_disabled(self, cluster_pair, query):
        on, off = cluster_pair
        sql = FEDBENCH_QUERIES[query]
        rows_on = _canon(on.sql(sql).rows)
        rows_off = _canon(off.sql(sql).rows)
        assert rows_on == rows_off
        oracle = ReferenceExecutor(off.store)
        assert rows_on == _canon(oracle.execute(off.parse_to_logical(sql)))

    @pytest.mark.parametrize(
        "sql",
        [
            "select dept_id from dept limit 3",
            "select sale_id from sales limit 5",
        ],
    )
    def test_limit_rows_identical_with_pushdown_disabled(
        self, cluster_pair, sql
    ):
        on, off = cluster_pair
        rows_on = on.sql(sql).rows
        rows_off = off.sql(sql).rows
        # A bare LIMIT has no ORDER BY, so only determinism (not an
        # ordering contract) makes these comparable — the engine reads
        # partitions in a fixed order either way.
        assert rows_on == rows_off

    def test_pushdown_off_plans_have_no_pushed_attrs(self, cluster_pair):
        _, off = cluster_pair
        for sql in FEDBENCH_QUERIES.values():
            assert "pushed[" not in off.explain(sql)


class TestLimitPushdownRule:
    """Unit-level contract of AdapterLimitPushdown."""

    def _scan(self, cluster, table):
        data = cluster.store.table(table)
        names = [c.name for c in data.schema.columns]
        return LogicalTableScan(table, table, names)

    def test_fetch_plus_offset_is_pushed(self, cluster):
        rule = AdapterLimitPushdown(cluster.store)
        sort = LogicalSort(self._scan(cluster, "dept"), [], fetch=3, offset=2)
        out = rule.apply(sort)
        assert out is not None
        assert isinstance(out, LogicalSort)  # engine-side Sort retained
        assert out.input.pushed_fetch == 5

    def test_pushes_through_row_preserving_project(self, cluster):
        rule = AdapterLimitPushdown(cluster.store)
        scan = self._scan(cluster, "dept")
        project = LogicalProject(scan, [ColRef(0)], ["dept_id"])
        sort = LogicalSort(project, [], fetch=4)
        out = rule.apply(sort)
        assert out is not None
        inner = out.input
        assert isinstance(inner, LogicalProject)
        assert inner.input.pushed_fetch == 4

    def test_declines_keyed_sort(self, cluster):
        rule = AdapterLimitPushdown(cluster.store)
        sort = LogicalSort(self._scan(cluster, "dept"), [(0, True)], fetch=3)
        assert rule.apply(sort) is None

    def test_declines_incapable_adapter(self, cluster):
        rule = AdapterLimitPushdown(cluster.store)
        sort = LogicalSort(self._scan(cluster, "sales"), [], fetch=3)
        assert rule.apply(sort) is None

    def test_idempotent_once_absorbed(self, cluster):
        rule = AdapterLimitPushdown(cluster.store)
        sort = LogicalSort(self._scan(cluster, "dept"), [], fetch=3)
        once = rule.apply(sort)
        assert rule.apply(once) is None
