"""End-to-end observability pipeline tests.

The issue's acceptance scenario: EXPLAIN ANALYZE over TPC-H Q3 on a
4-site IC+M cluster reports per-operator actual and estimated rows, and
the emitted trace validates against the ``repro-trace/v1`` schema.  Plus
the disabled-by-default guarantees: with ``SystemConfig.tracing`` off no
spans are recorded, and the null tracer stays active.
"""

import json

import pytest

from repro.bench.tpch import QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_TRACER, get_tracer, validate_trace

pytestmark = pytest.mark.obs

SF = 0.05


def test_explain_analyze_q3_on_ic_plus_m_acceptance():
    config = SystemConfig.ic_plus_m(4).with_(tracing=True)
    cluster = load_tpch_cluster(config, SF)
    registry = get_registry()
    before = registry.snapshot()

    text = cluster.explain_analyze(QUERIES[3].sql)

    # per-operator estimated and actual rows, fragment by fragment
    assert "RootFragment" in text
    assert "Fragment #" in text
    annotated = [l for l in text.splitlines() if "actual rows=" in l]
    assert len(annotated) >= 5
    assert any("rows~" in line for line in annotated)
    assert all("q-err=" in line for line in annotated)

    # the trace artefact validates against the documented schema
    artefact = cluster.last_trace.to_dict(
        query="Q3",
        system=config.name,
        metrics=registry.delta_since(before),
    )
    assert validate_trace(artefact) == []
    json.loads(json.dumps(artefact))  # JSON-serialisable throughout
    (root,) = artefact["spans"]
    phases = [c["name"] for c in root["children"]]
    assert phases[0] == "parse"
    assert {"hep", "volcano-logical", "volcano-physical"} <= set(phases)
    assert phases[-1] == "execute"
    # execution dominated by per-fragment child spans
    execute = root["children"][-1]
    assert any(c["name"].startswith("fragment#") for c in execute["children"])

    # the metrics delta shows the query's row flows and exchange traffic
    metrics = artefact["metrics"]
    assert metrics["exec.queries"] == 1
    assert metrics["planner.queries_planned"] == 1
    assert any(name.startswith("operator.rows_out") for name in metrics)
    assert any(name.startswith("exchange.bytes") for name in metrics)
    assert any(
        name.startswith("fragment.mem_highwater_bytes") for name in metrics
    )


def test_no_spans_recorded_when_tracing_off():
    """SystemConfig.tracing defaults off: the null tracer swallows all."""
    config = SystemConfig.ic_plus_m(4)
    assert config.tracing is False
    cluster = load_tpch_cluster(config, SF)
    result = cluster.sql(QUERIES[6].sql)
    assert result.rows
    tracer = cluster.last_trace
    assert tracer is NULL_TRACER
    assert tracer.spans() == []
    assert tracer.roots == []
    assert tracer.clock == 0.0


def test_no_tracer_left_active_after_query():
    config = SystemConfig.ic_plus_m(4).with_(tracing=True)
    cluster = load_tpch_cluster(config, SF)
    cluster.sql(QUERIES[6].sql)
    assert get_tracer() is NULL_TRACER  # activation is scoped to the query


def test_each_query_gets_a_fresh_trace():
    config = SystemConfig.ic_plus_m(4).with_(tracing=True)
    cluster = load_tpch_cluster(config, SF)
    cluster.sql(QUERIES[6].sql)
    first = cluster.last_trace
    cluster.sql(QUERIES[6].sql)
    second = cluster.last_trace
    assert first is not second
    assert len(first.roots) == len(second.roots) == 1


def test_traces_are_deterministic_across_runs():
    def run():
        config = SystemConfig.ic_plus_m(4).with_(tracing=True)
        cluster = load_tpch_cluster(config, SF)
        cluster.sql(QUERIES[3].sql)
        return cluster.last_trace.to_dict(query="Q3", system="IC+M")

    assert run() == run()


def test_failed_queries_still_close_their_spans():
    config = SystemConfig.ic(4).with_(tracing=True)
    cluster = load_tpch_cluster(config, SF)
    outcome = cluster.try_sql(QUERIES[2].sql)  # IC exhausts its budget
    assert not outcome.ok
    tracer = cluster.last_trace
    (root,) = tracer.roots
    assert root.name == "query"
    assert validate_trace(tracer.to_dict(query="Q2", system="IC")) == []


def test_bench_harness_captures_per_query_metrics():
    from repro.bench.harness import ResponseTimeHarness

    harness = ResponseTimeHarness(
        load_tpch_cluster, {"Q6": QUERIES[6].sql}, (SF,)
    )
    result = harness.run(SystemConfig.ic_plus(4))
    cell = result.cells[("Q6", SF)]
    assert cell.metrics["exec.queries"] == 1
    assert any(k.startswith("operator.rows_out") for k in cell.metrics)
