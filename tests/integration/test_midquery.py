"""Mid-query re-optimization: skew-focused differential tests.

The scenario under test: a filter on a Zipf-hot key makes the optimizer's
uniform-selectivity estimate wrong by two orders of magnitude, the static
plan ships the bloated intermediate the wrong way, and the mid-query
controller — checkpointing at the pipeline breaker where that intermediate
materializes — re-plans the un-executed suffix against the *true*
cardinality.  Every test here holds the re-optimizer to the differential
standard: whatever it does to the plan, the rows (including their order)
must be identical to the static run and to the single-node reference
oracle, and with the flag off the system must be byte-identical to a build
that has never heard of mid-query re-optimization.
"""

import difflib
import json
from pathlib import Path

import pytest

from helpers import make_company_cluster, naive_execute, normalise
from repro.bench.midquery import (
    MIDQUERY_QUERIES,
    load_skewed_cluster,
    run_midquery_bench,
    validate_midquery_artefact,
)
from repro.common.config import SystemConfig
from repro.core.cluster import QueryStatus
from repro.faults.injector import ExchangeDrop, FragmentOom
from repro.obs.metrics import get_registry, q_error
from repro.verify.reference import ReferenceExecutor

pytestmark = pytest.mark.midquery

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

THRESHOLD = 4.0
ADAPTIVE_KNOBS = dict(
    midquery_reoptimization=True,
    midquery_replan_q_error_threshold=THRESHOLD,
)


def _check_snapshot(name: str, actual: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    if update:
        path.write_text(actual)
        return
    if not path.exists():
        pytest.fail(
            f"golden snapshot {name} missing — run with --snapshot-update"
        )
    expected = path.read_text()
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{name}",
                tofile="actual",
                lineterm="",
            )
        )
        pytest.fail(f"EXPLAIN ANALYZE drifted from golden snapshot:\n{diff}")


def _root_q_error(result) -> float:
    """q-error of the root fragment's root operator (the replanned part).

    ``max_q_error()`` is the wrong probe here: the *executed prefix* (the
    mis-estimated hot-key filter) stays in ``fragment_trees`` of both the
    static and the adaptive run, so its huge q-error masks the suffix
    improvement.  The root operator sits strictly above the checkpoint, so
    its estimate is the one the replan was allowed to fix.
    """
    root = result.fragment_trees[-1].root
    rows, _units = result.operator_actuals[id(root)]
    return q_error(root.rows_est, rows)


def _reference_rows(cluster, sql: str):
    return ReferenceExecutor(cluster.store).execute(
        cluster.parse_to_logical(sql)
    )


class TestPinnedRegression:
    """The MQ1/IC+ scenario, pinned end to end at seed 7 / sf 1.0."""

    def test_skewed_join_triggers_replan_and_switches_plan(self):
        base = SystemConfig.ic_plus(4)
        static = load_skewed_cluster(base)
        adaptive = load_skewed_cluster(base.with_(**ADAPTIVE_KNOBS))
        sql = MIDQUERY_QUERIES["MQ1"]
        registry = get_registry()

        static_result = static.sql(sql)
        assert registry.counter("midquery.checkpoints") == 0

        adaptive_result = adaptive.sql(sql)
        assert registry.counter("midquery.checkpoints") >= 1
        assert registry.counter("midquery.triggers") >= 1
        assert registry.counter("midquery.replans") == 1
        assert registry.counter("midquery.plan_switches") == 1
        assert registry.counter("midquery.declined") == 0

        # Differential: same rows, same order, and both match the oracle.
        assert normalise(adaptive_result.rows, ordered=True) == normalise(
            static_result.rows, ordered=True
        )
        reference = _reference_rows(static, sql)
        assert normalise(adaptive_result.rows) == normalise(reference)

        # The replanned suffix is marked, the static plan is not.
        assert any(f.replanned for f in adaptive_result.fragment_trees)
        assert not any(f.replanned for f in static_result.fragment_trees)

        # The static estimate above the breaker was wrong past the
        # trigger threshold; the replanned suffix is nearly exact.
        static_q = _root_q_error(static_result)
        adaptive_q = _root_q_error(adaptive_result)
        assert static_q > THRESHOLD
        assert adaptive_q < THRESHOLD
        assert adaptive_q < static_q

        # Even after paying for re-planning ticks and shipping the
        # materialized intermediate, the adaptive run is faster.
        assert (
            adaptive_result.simulated_seconds
            < static_result.simulated_seconds
        )

    def test_temp_tables_are_dropped_after_execution(self):
        base = SystemConfig.ic_plus(4).with_(**ADAPTIVE_KNOBS)
        cluster = load_skewed_cluster(base)
        cluster.sql(MIDQUERY_QUERIES["MQ1"])
        assert get_registry().counter("midquery.replans") == 1
        leaked = [
            name
            for name in cluster.store.table_names()
            if name.startswith("__mq_")
        ]
        assert leaked == []

    def test_replan_is_visible_in_explain_analyze(self):
        base = SystemConfig.ic_plus(4).with_(**ADAPTIVE_KNOBS)
        cluster = load_skewed_cluster(base)
        text = cluster.explain_analyze(MIDQUERY_QUERIES["MQ1"])
        assert "[midquery replanned]" in text
        # The replanned suffix scans the materialized intermediate.
        assert "__mq_0" in text


class TestSkewSweep:
    """Seeded property sweep: every query, both backends, rows identical."""

    @pytest.mark.parametrize("name", sorted(MIDQUERY_QUERIES))
    @pytest.mark.parametrize("seed", [7, 11])
    def test_static_and_adaptive_rows_identical(
        self, name, seed, execution_backend
    ):
        base = SystemConfig.ic_plus(4).with_(
            execution_backend=execution_backend
        )
        static = load_skewed_cluster(base, scale_factor=0.5, seed=seed)
        adaptive = load_skewed_cluster(
            base.with_(**ADAPTIVE_KNOBS), scale_factor=0.5, seed=seed
        )
        sql = MIDQUERY_QUERIES[name]
        static_result = static.sql(sql)
        adaptive_result = adaptive.sql(sql)
        assert normalise(adaptive_result.rows, ordered=True) == normalise(
            static_result.rows, ordered=True
        )
        reference = _reference_rows(static, sql)
        assert normalise(adaptive_result.rows) == normalise(reference)

    def test_company_store_skew_knobs(self, execution_backend):
        # The reusable company fixture with its new skew knobs: 90% of
        # sales pile onto employee 1 and the region is a function of the
        # employee, so a region predicate correlates with the join key.
        base = SystemConfig.ic_plus(4).with_(
            execution_backend=execution_backend
        )
        static = make_company_cluster(
            base, sales_skew=0.9, correlated_regions=True
        )
        adaptive = make_company_cluster(
            base.with_(**ADAPTIVE_KNOBS),
            sales_skew=0.9,
            correlated_regions=True,
        )
        queries = (
            "SELECT s.sale_id, e.name, s.amount FROM sales s "
            "JOIN emp e ON s.emp_id = e.emp_id "
            "WHERE s.emp_id = 1 ORDER BY s.sale_id",
            "SELECT s.sale_id, e.name, s.region, s.amount FROM sales s "
            "JOIN emp e ON s.emp_id = e.emp_id "
            "WHERE s.emp_id = 1 AND s.region = 'south' "
            "ORDER BY s.sale_id",
        )
        for sql in queries:
            static_result = static.sql(sql)
            adaptive_result = adaptive.sql(sql)
            assert normalise(
                adaptive_result.rows, ordered=True
            ) == normalise(static_result.rows, ordered=True)
            oracle = naive_execute(
                adaptive.parse_to_logical(sql), adaptive.store
            )
            assert normalise(adaptive_result.rows) == normalise(oracle)

    def test_skew_knobs_off_is_byte_identical_data(self):
        from helpers import make_company_store

        plain = make_company_store()
        knobbed = make_company_store(
            dept_skew=0.0, sales_skew=0.0, correlated_regions=False
        )
        for name in plain.table_names():
            assert (
                plain.table(name).partitions
                == knobbed.table(name).partitions
            )


class TestFlagOff:
    """With the flag off (or the threshold unreachable) nothing changes."""

    def test_flag_off_leaves_no_midquery_footprint(self):
        base = SystemConfig.ic_plus(4)
        cluster = load_skewed_cluster(base)
        cluster.sql(MIDQUERY_QUERIES["MQ1"])
        registry = get_registry()
        assert registry.counter("midquery.checkpoints") == 0
        assert registry.counter("midquery.triggers") == 0
        assert registry.counter("midquery.replans") == 0
        assert not any(
            name.startswith("__mq_")
            for name in cluster.store.table_names()
        )

    def test_unreachable_threshold_matches_flag_off_exactly(self):
        # Flag on but the threshold never trips: checkpoints fire, nothing
        # else does, and the run is *identical* to flag-off — same rows in
        # the same order, same makespan, same work units, same plan text.
        base = SystemConfig.ic_plus(4)
        off = load_skewed_cluster(base)
        armed = load_skewed_cluster(
            base.with_(
                midquery_reoptimization=True,
                midquery_replan_q_error_threshold=float("inf"),
            )
        )
        sql = MIDQUERY_QUERIES["MQ1"]
        assert off.explain(sql) == armed.explain(sql)
        off_result = off.sql(sql)
        armed_result = armed.sql(sql)
        assert off_result.rows == armed_result.rows
        assert (
            off_result.simulated_seconds == armed_result.simulated_seconds
        )
        assert off_result.total_units == armed_result.total_units
        assert off_result.rows_shipped == armed_result.rows_shipped
        registry = get_registry()
        assert registry.counter("midquery.checkpoints") >= 1
        assert registry.counter("midquery.triggers") == 0
        assert registry.counter("midquery.replans") == 0

    def test_traced_flag_off_run_has_no_replan_spans(self):
        base = SystemConfig.ic_plus(4).with_(tracing=True)
        cluster = load_skewed_cluster(base)
        cluster.sql(MIDQUERY_QUERIES["MQ1"])
        artefact = json.dumps(
            cluster.last_trace.to_dict(query="MQ1", system="IC+")
        )
        assert "midquery-replan" not in artefact

    def test_fault_injected_run_never_replans(self):
        # Chaos replays must stay deterministic: under an injector the
        # engine executes the static plan even with the flag on.
        base = SystemConfig.ic_plus(4).with_(
            **ADAPTIVE_KNOBS,
            faults=(ExchangeDrop(exchange_id=-1, at=0.0),),
            max_retries=2,
        )
        cluster = load_skewed_cluster(base, scale_factor=0.5)
        outcome = cluster.try_sql(MIDQUERY_QUERIES["MQ2"])
        assert outcome.status is QueryStatus.FAILED_SITE
        registry = get_registry()
        assert registry.counter("midquery.checkpoints") == 0
        assert registry.counter("midquery.replans") == 0


class TestPartialHarvest:
    """Failed/shed queries still feed cardinality feedback (the fix)."""

    def test_faulted_attempt_harvests_completed_fragments(self):
        # OOM-kill the *root* fragment (#2 for MQ2): both producer
        # fragments complete before the attempt dies, so their actuals
        # are exactly what the partial harvest should capture.
        base = SystemConfig.ic_plus(4).with_(
            plan_cache=True,
            cardinality_feedback=True,
            faults=(FragmentOom(fragment_id=2, at=0.0),),
        )
        cluster = load_skewed_cluster(base, scale_factor=0.5)
        sql = MIDQUERY_QUERIES["MQ2"]

        first = cluster.try_sql(sql)
        assert first.status is QueryStatus.FAILED_SITE
        # The fragments that completed before the failure carried true
        # cardinalities into the feedback registry.
        assert len(cluster.adaptive.feedback) > 0
        assert (
            get_registry().counter("adaptive.feedback_partial_harvests")
            >= 1
        )

        # The one-shot drop is consumed; the resubmission completes and
        # still answers correctly.
        second = cluster.try_sql(sql, at=0.1)
        assert second.ok
        reference = _reference_rows(cluster, sql)
        assert normalise(second.result.rows) == normalise(reference)

    def test_deadline_timeout_harvests_completed_fragments(self):
        base = SystemConfig.ic_plus(4).with_(
            plan_cache=True,
            cardinality_feedback=True,
            query_deadline_seconds=1e-6,
        )
        cluster = load_skewed_cluster(base, scale_factor=0.5)
        outcome = cluster.try_sql(MIDQUERY_QUERIES["MQ2"])
        assert outcome.status is QueryStatus.TIMED_OUT
        assert outcome.result is None
        assert len(cluster.adaptive.feedback) > 0
        assert (
            get_registry().counter("adaptive.feedback_partial_harvests")
            >= 1
        )


class TestBenchArtefact:
    """The repro-bench midquery harness and its artefact gate."""

    def test_smoke_bench_produces_valid_artefact(self):
        report = run_midquery_bench(
            systems=("IC+",),
            scale_factor=0.5,
            sites=4,
            seed=7,
            threshold=THRESHOLD,
            query_ids=("MQ1", "MQ2"),
        )
        payload = report.to_dict()
        assert payload["schema"] == "repro-midquery/v1"
        assert validate_midquery_artefact(payload) == []
        assert report.total_replans >= 1
        assert all(q.results_match and q.oracle_match for q in report.queries)

    def test_artefact_gate_rejects_tampering(self):
        report = run_midquery_bench(
            systems=("IC+",),
            scale_factor=0.5,
            sites=4,
            seed=7,
            threshold=THRESHOLD,
            query_ids=("MQ1",),
        )
        payload = report.to_dict()
        payload["queries"][0]["results_match"] = False
        assert validate_midquery_artefact(payload)
        never_fired = report.to_dict()
        never_fired["total_replans"] = 0
        assert any(
            "never fired" in problem
            for problem in validate_midquery_artefact(never_fired)
        )


class TestGoldenPlans:
    """Pinned EXPLAIN ANALYZE of the replanned executions (seed 7)."""

    @pytest.mark.parametrize("name", ["MQ1", "MQ2", "MQ3"])
    def test_golden_midquery_analyze(self, name, snapshot_update):
        base = SystemConfig.ic_plus(4).with_(**ADAPTIVE_KNOBS)
        cluster = load_skewed_cluster(base)
        text = cluster.explain_analyze(MIDQUERY_QUERIES[name])
        assert "[midquery replanned]" in text
        _check_snapshot(
            f"{name}-IC+.midquery.analyze.txt", text + "\n", snapshot_update
        )
