"""The views extension: running TPC-H Q15, the query the paper disables.

Ignite+Calcite does not support SQL VIEWs, so the paper disables Q15 for
every system.  The reproduction carries view support as an explicit
beyond-the-paper extension (``SystemConfig.views_supported``): CREATE VIEW
parses, view references expand like derived tables, and the full Q15 —
view plus its max-revenue scalar subquery over that view — runs.
"""

import pytest

from repro.bench.tpch import QUERIES, cached_tpch_data, load_tpch_cluster
from repro.common.config import SystemConfig
from repro.common.errors import UnsupportedSqlError
from repro.core.cluster import QueryStatus

SF = 0.2

Q15_SELECT = """
select s.s_suppkey, s.s_name, s.s_address, s.s_phone, r.total_revenue
from supplier s, revenue0 r
where s.s_suppkey = r.supplier_no
  and r.total_revenue = (select max(r2.total_revenue) from revenue0 r2)
order by s_suppkey
"""


@pytest.fixture(scope="module")
def cluster():
    config = SystemConfig.ic_plus(4).with_(views_supported=True)
    return load_tpch_cluster(config, SF)


class TestStockBehaviour:
    def test_views_rejected_without_the_extension(self):
        stock = load_tpch_cluster(SystemConfig.ic_plus(4), SF)
        outcome = stock.try_sql(QUERIES[15].sql)
        assert outcome.status is QueryStatus.UNSUPPORTED

    def test_create_view_requires_view_statement(self, cluster):
        with pytest.raises(UnsupportedSqlError):
            cluster.create_view("select 1 from supplier")


class TestQ15WithViews:
    def test_create_view_succeeds(self, cluster):
        outcome = cluster.try_sql(QUERIES[15].sql)
        assert outcome.ok
        assert outcome.rows == []

    def test_q15_select_runs_and_is_correct(self, cluster):
        cluster.try_sql(QUERIES[15].sql)  # (re-)register revenue0
        outcome = cluster.try_sql(Q15_SELECT)
        assert outcome.ok, (outcome.status, outcome.error)

        # Independent computation of the view + max join.
        data = cached_tpch_data(SF)
        revenue = {}
        for li in data["lineitem"]:
            if "1996-01-01" <= li[10] < "1996-04-01":
                revenue[li[2]] = revenue.get(li[2], 0.0) + li[5] * (1 - li[6])
        top = max(revenue.values())
        expected_keys = sorted(
            k for k, v in revenue.items() if v == pytest.approx(top)
        )
        assert [row[0] for row in outcome.rows] == expected_keys
        for row in outcome.rows:
            assert row[4] == pytest.approx(top)

    def test_view_expansion_in_both_variants(self):
        for maker in (SystemConfig.ic_plus, SystemConfig.ic_plus_m):
            cluster = load_tpch_cluster(
                maker(4).with_(views_supported=True), SF
            )
            cluster.try_sql(QUERIES[15].sql)
            outcome = cluster.try_sql(Q15_SELECT)
            assert outcome.ok
