"""Integration tests for the reporting pipeline at tiny scale."""

import pytest

from repro.bench.reporting import (
    aql_table,
    failure_matrix,
    ssb_gain_figure,
    tpch_gain_figure,
)

SF = (0.1,)


class TestFailureMatrix:
    def test_rows_cover_all_queries(self):
        rows = failure_matrix(0.1)
        assert len(rows) == 22
        statuses = {q: (a, b) for q, a, b in rows}
        assert statuses["Q2"] == ("planning_failed", "ok")
        assert statuses["Q15"] == ("unsupported", "unsupported")
        assert statuses["Q20"] == ("planner_defect", "planner_defect")


class TestGainFigures:
    def test_tpch_figure_has_all_cells(self):
        figure = tpch_gain_figure("Fig", "IC", "IC+", SF, (4,))
        assert len(figure.gains) == 20
        # Baseline planning failures have no gain.
        assert figure.gains[("Q2", 4)] is None
        assert figure.gains[("Q3", 4)] is not None
        markdown = figure.to_markdown()
        assert "| Q3 |" in markdown

    def test_ssb_figure(self):
        figure = ssb_gain_figure(SF, (4,))
        assert set(q for q, _ in figure.gains) == {
            "Q1.1", "Q1.2", "Q1.3", "Q3.1", "Q3.2", "Q3.3", "Q3.4",
        }
        assert all(
            g is None or g > 0 for g in figure.gains.values()
        )


class TestAqlTable:
    def test_table_shape_and_monotonicity(self):
        table = aql_table(0.1, (4,), clients=(2, 8), duration_seconds=120)
        assert len(table.latencies) == 6  # 3 systems x 2 client counts
        for system in table.systems:
            low = table.latencies[(4, system, 2)]
            high = table.latencies[(4, system, 8)]
            assert high >= low * 0.95
        markdown = table.to_markdown()
        assert "| clients |" in markdown
