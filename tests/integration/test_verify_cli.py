"""Integration test for the ``repro-bench verify`` subcommand."""

import pytest

from repro.cli import build_parser, main


class TestVerifyCli:
    def test_parser_accepts_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.queries == "tpch"
        assert args.seed == 0
        assert args.count == 50
        assert args.systems == "IC,IC+,IC+M"
        assert args.sf == (0.05,)

    def test_small_tpch_sweep_passes(self, capsys):
        main(
            [
                "verify",
                "--queries",
                "tpch",
                "--seed",
                "1",
                "--count",
                "5",
                "--sf",
                "0.02",
                "--systems",
                "IC+",
            ]
        )
        out = capsys.readouterr().out
        assert "5 random tpch queries" in out
        assert "PASS" in out
        assert "failed=0" in out

    def test_small_ssb_sweep_passes(self, capsys):
        main(
            [
                "verify",
                "--queries",
                "ssb",
                "--seed",
                "2",
                "--count",
                "4",
                "--sf",
                "0.02",
                "--systems",
                "IC",
            ]
        )
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_mismatch_exits_nonzero(self, capsys, monkeypatch):
        # Force the comparison itself to report a divergence and check the
        # command surfaces it as a failing exit code.
        import repro.verify.differential as differential

        def broken_compare(engine_rows, reference_rows, logical=None):
            return "forced divergence (test)"

        monkeypatch.setattr(
            differential, "compare_results", broken_compare
        )
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "verify",
                    "--queries",
                    "tpch",
                    "--seed",
                    "1",
                    "--count",
                    "2",
                    "--sf",
                    "0.02",
                    "--systems",
                    "IC+",
                ]
            )
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "mismatch" in out


class TestVerifyExitCodes:
    """Mismatch, invariant violation and harness crash are told apart."""

    ARGS = [
        "verify", "--queries", "tpch", "--seed", "1", "--count", "2",
        "--sf", "0.02", "--systems", "IC+",
    ]

    def test_invariant_violation_exits_2(self, capsys, monkeypatch):
        import repro.verify.differential as differential

        def forced_invariant(sql, store, config, views=None):
            return differential.DifferentialReport(
                sql, config.name, differential.INVARIANT, "forced (test)"
            )

        monkeypatch.setattr(
            differential, "differential_check", forced_invariant
        )
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS)
        assert excinfo.value.code == 2
        assert "invariant violation" in capsys.readouterr().out

    def test_harness_crash_exits_3(self, capsys, monkeypatch):
        import repro.verify.differential as differential

        def exploding_check(sql, store, config, views=None):
            raise RuntimeError("forced crash (test)")

        monkeypatch.setattr(
            differential, "differential_check", exploding_check
        )
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS)
        assert excinfo.value.code == 3
        assert "CRASH" in capsys.readouterr().out

    def test_crash_outranks_invariant_and_mismatch(self, capsys, monkeypatch):
        import repro.verify.differential as differential

        calls = iter(("crash", "invariant", "mismatch"))

        def mixed_check(sql, store, config, views=None):
            kind = next(calls, "ok")
            if kind == "crash":
                raise RuntimeError("forced crash (test)")
            if kind == "invariant":
                return differential.DifferentialReport(
                    sql, config.name, differential.INVARIANT, "forced"
                )
            if kind == "mismatch":
                return differential.DifferentialReport(
                    sql, config.name, differential.MISMATCH, "forced"
                )
            return differential.DifferentialReport(
                sql, config.name, differential.OK
            )

        monkeypatch.setattr(differential, "differential_check", mixed_check)
        args = list(self.ARGS)
        args[args.index("--count") + 1] = "3"
        with pytest.raises(SystemExit) as excinfo:
            main(args)
        assert excinfo.value.code == 3
        capsys.readouterr()

    def test_unknown_system_exits_64(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--systems", "NOPE"])
        assert excinfo.value.code == 64
        assert "unknown system" in capsys.readouterr().out


class TestChaosCli:
    def test_parser_accepts_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.queries == "tpch"
        assert args.seed == 0
        assert args.retries == 2
        assert args.deadline is None
        assert args.kill_site == []
        assert args.sf == (0.05,)

    def test_bad_fault_spec_exits_64(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--kill-site", "bogus"])
        assert excinfo.value.code == 64
        assert "bad --kill-site spec" in capsys.readouterr().out

    @pytest.mark.chaos
    def test_end_to_end_kill_site_report(self, capsys):
        main(
            [
                "chaos", "--queries", "tpch", "--seed", "0",
                "--kill-site", "2@t=0.01", "--retries", "2",
                "--sf", "0.02",
            ]
        )
        out = capsys.readouterr().out
        assert "chaos report: system=IC+ sites=4 seed=0" in out
        assert "availability=100.0%" in out
        assert "recovered results match the reference executor" in out
        assert "latency: p50=" in out
