"""Integration test for the ``repro-bench verify`` subcommand."""

import pytest

from repro.cli import build_parser, main


class TestVerifyCli:
    def test_parser_accepts_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.queries == "tpch"
        assert args.seed == 0
        assert args.count == 50
        assert args.systems == "IC,IC+,IC+M"
        assert args.sf == (0.05,)

    def test_small_tpch_sweep_passes(self, capsys):
        main(
            [
                "verify",
                "--queries",
                "tpch",
                "--seed",
                "1",
                "--count",
                "5",
                "--sf",
                "0.02",
                "--systems",
                "IC+",
            ]
        )
        out = capsys.readouterr().out
        assert "5 random tpch queries" in out
        assert "PASS" in out
        assert "failed=0" in out

    def test_small_ssb_sweep_passes(self, capsys):
        main(
            [
                "verify",
                "--queries",
                "ssb",
                "--seed",
                "2",
                "--count",
                "4",
                "--sf",
                "0.02",
                "--systems",
                "IC",
            ]
        )
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_mismatch_exits_nonzero(self, capsys, monkeypatch):
        # Force the comparison itself to report a divergence and check the
        # command surfaces it as a failing exit code.
        import repro.verify.differential as differential

        def broken_compare(engine_rows, reference_rows, logical=None):
            return "forced divergence (test)"

        monkeypatch.setattr(
            differential, "compare_results", broken_compare
        )
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "verify",
                    "--queries",
                    "tpch",
                    "--seed",
                    "1",
                    "--count",
                    "2",
                    "--sf",
                    "0.02",
                    "--systems",
                    "IC+",
                ]
            )
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "mismatch" in out
