"""Edge cases and failure injection across the whole pipeline."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.config import SystemConfig
from repro.common.errors import CatalogError, ValidationError
from repro.core.cluster import IgniteCalciteCluster, QueryStatus

I = ColumnType.INTEGER
D = ColumnType.DOUBLE
S = ColumnType.VARCHAR


@pytest.fixture
def cluster():
    c = IgniteCalciteCluster.ic_plus(sites=4)
    c.create_table(
        TableSchema(
            "t", [Column("k", I), Column("g", I), Column("v", D)], ["k"]
        ),
        [(i, i % 3, float(i)) for i in range(30)],
    )
    c.create_table(
        TableSchema("empty", [Column("k", I), Column("v", D)], ["k"]), []
    )
    c.create_table(
        TableSchema(
            "nullable",
            [Column("k", I), Column("v", D, nullable=True)],
            ["k"],
        ),
        [(1, 1.0), (2, None), (3, None), (4, 4.0)],
    )
    return c


class TestEmptyTables:
    def test_scan_empty(self, cluster):
        assert cluster.sql("select k from empty").rows == []

    def test_scalar_aggregates_over_empty(self, cluster):
        rows = cluster.sql(
            "select count(*), sum(v), avg(v), min(v), max(v) from empty"
        ).rows
        assert rows == [(0, None, None, None, None)]

    def test_group_by_over_empty_yields_nothing(self, cluster):
        assert cluster.sql("select k, count(*) from empty group by k").rows == []

    def test_join_with_empty_side(self, cluster):
        rows = cluster.sql(
            "select t.k from t, empty e where t.k = e.k"
        ).rows
        assert rows == []

    def test_left_join_with_empty_right(self, cluster):
        rows = cluster.sql(
            "select t.k, e.v from t left join empty e on t.k = e.k"
        ).rows
        assert len(rows) == 30
        assert all(r[1] is None for r in rows)

    def test_anti_join_with_empty_right_keeps_everything(self, cluster):
        rows = cluster.sql(
            "select k from t where k not in (select k from empty)"
        ).rows
        assert len(rows) == 30

    def test_exists_on_empty_drops_everything(self, cluster):
        rows = cluster.sql(
            "select t.k from t where exists "
            "(select * from empty e where e.k = t.k)"
        ).rows
        assert rows == []

    def test_scalar_subquery_over_empty_is_null(self, cluster):
        # v > NULL is never true.
        rows = cluster.sql(
            "select k from t where v > (select avg(v) from empty)"
        ).rows
        assert rows == []


class TestNulls:
    def test_aggregates_skip_nulls(self, cluster):
        rows = cluster.sql(
            "select count(*), count(v), sum(v), avg(v) from nullable"
        ).rows
        assert rows == [(4, 2, 5.0, 2.5)]

    def test_where_null_comparison_filters_out(self, cluster):
        rows = cluster.sql("select k from nullable where v > 0").rows
        assert sorted(r[0] for r in rows) == [1, 4]

    def test_is_null_predicate(self, cluster):
        rows = cluster.sql("select k from nullable where v is null").rows
        assert sorted(r[0] for r in rows) == [2, 3]

    def test_is_not_null_predicate(self, cluster):
        rows = cluster.sql("select k from nullable where v is not null").rows
        assert sorted(r[0] for r in rows) == [1, 4]


class TestDegenerateShapes:
    def test_limit_zero(self, cluster):
        assert cluster.sql("select k from t order by k limit 0").rows == []

    def test_limit_larger_than_table(self, cluster):
        assert len(cluster.sql("select k from t limit 999").rows) == 30

    def test_self_join(self, cluster):
        rows = cluster.sql(
            "select a.k from t a, t b where a.k = b.k"
        ).rows
        assert len(rows) == 30

    def test_filter_matching_nothing(self, cluster):
        assert cluster.sql("select k from t where k = -1").rows == []

    def test_constant_true_filter(self, cluster):
        assert len(cluster.sql("select k from t where 1 = 1").rows) == 30

    def test_constant_false_filter(self, cluster):
        assert cluster.sql("select k from t where 1 = 2").rows == []

    def test_single_row_table(self):
        c = IgniteCalciteCluster.ic_plus(sites=4)
        c.create_table(
            TableSchema("one", [Column("k", I)], ["k"]), [(42,)]
        )
        assert c.sql("select k from one").rows == [(42,)]

    def test_duplicate_rows_survive(self, cluster):
        c = IgniteCalciteCluster.ic_plus(sites=2)
        c.create_table(
            TableSchema(
                "dup", [Column("k", I), Column("v", I)], ["k", "v"],
            ),
            [(1, 1), (1, 1), (1, 1)],
        )
        # Same PK values are allowed here (storage is a heap, not a map);
        # all copies flow through the engine.
        assert len(c.sql("select v from dup").rows) == 3


class TestErrorPaths:
    def test_unknown_table(self, cluster):
        outcome = cluster.try_sql("select x from ghost")
        assert outcome.status is QueryStatus.ERROR or not outcome.ok

    def test_unknown_table_raises_catalog_error(self, cluster):
        with pytest.raises(CatalogError):
            cluster.sql("select x from ghost")

    def test_unknown_column_raises(self, cluster):
        with pytest.raises(ValidationError):
            cluster.sql("select nope from t")

    def test_aggregate_in_where_raises(self, cluster):
        with pytest.raises(ValidationError):
            cluster.sql("select k from t where sum(v) > 1")
