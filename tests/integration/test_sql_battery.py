"""A broad SQL battery: every query differentially checked on all systems.

Complements the targeted end-to-end tests with wide dialect coverage —
each case runs on IC, IC+ and IC+M and must match the naive oracle.
"""

import pytest

from repro.common.config import SystemConfig
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

from helpers import make_company_cluster, make_company_store, naive_execute, normalise

BATTERY = {
    # --- projections and expressions ---
    "arith_mix": "select emp_id, (salary + 1000) * 2 - 500 from emp where emp_id < 20",
    "division": "select emp_id, salary / 12 from emp where emp_id < 10",
    "negative": "select emp_id from emp where 0 - salary < -150000",
    "string_select": "select name, 'fixed' from emp where emp_id = 1",
    "case_no_else": "select emp_id, case when salary > 100000 then 'high' end from emp where emp_id < 15",
    "nested_case": (
        "select emp_id, case when dept_id = 1 then 'a' "
        "when dept_id = 2 then 'b' else 'c' end from emp where emp_id < 25"
    ),
    "upper_lower": "select upper(name), lower(name) from emp where emp_id = 3",
    "substring": "select substring(name from 1 for 3) from emp where emp_id < 5",
    "extract": "select emp_id, extract(year from hired), extract(month from hired) from emp where emp_id < 8",
    # --- predicates ---
    "not_between": "select emp_id from emp where salary not between 40000 and 190000",
    "not_like": "select emp_id from emp where name not like 'emp1%'",
    "chained_or": "select emp_id from emp where dept_id = 1 or dept_id = 2 or dept_id = 3",
    "not_in_list": "select emp_id from emp where dept_id not in (1, 2, 3, 4)",
    "de_morgan": "select emp_id from emp where not (dept_id = 1 or salary > 100000)",
    "date_compare": "select emp_id from emp where hired >= '2015-01-01' and hired < '2020-01-01'",
    "or_of_ands": (
        "select emp_id from emp where (dept_id = 1 and salary > 100000) "
        "or (dept_id = 2 and salary < 60000)"
    ),
    # --- aggregation ---
    "count_distinct": "select count(distinct dept_id) from emp",
    "sum_distinct": "select sum(distinct dept_id) from emp",
    "group_by_two_keys": (
        "select dept_id, extract(year from hired), count(*) from emp "
        "group by dept_id, extract(year from hired) order by 1, 2"
    ),
    "having_on_avg": (
        "select dept_id from emp group by dept_id "
        "having avg(salary) > 100000 order by dept_id"
    ),
    "agg_of_expression": "select dept_id, sum(salary * 0.1) from emp group by dept_id order by dept_id",
    "expression_of_aggs": (
        "select dept_id, sum(salary) / count(*) from emp "
        "group by dept_id order by dept_id"
    ),
    "min_max_strings": "select min(name), max(name) from emp",
    # --- joins ---
    "join_on_syntax": (
        "select e.name from emp e join dept d on e.dept_id = d.dept_id "
        "where d.budget > 50000"
    ),
    "join_extra_on_conjunct": (
        "select e.emp_id from emp e join sales s "
        "on e.emp_id = s.emp_id and s.amount > 4000"
    ),
    "theta_join": (
        "select count(*) from emp e, dept d "
        "where e.dept_id = d.dept_id and e.salary > d.budget"
    ),
    "self_join_pairs": (
        "select count(*) from emp a, emp b "
        "where a.dept_id = b.dept_id and a.emp_id < b.emp_id"
    ),
    "three_way_with_filters": (
        "select d.dept_name, count(*) from dept d, emp e, sales s "
        "where d.dept_id = e.dept_id and e.emp_id = s.emp_id "
        "and s.region = 'north' group by d.dept_name order by 2 desc, 1"
    ),
    "left_join_null_check": (
        "select e.emp_id from emp e left join sales s on e.emp_id = s.emp_id "
        "where s.sale_id is null"
    ),
    # --- subqueries ---
    "in_subquery_with_filter": (
        "select name from emp where dept_id in "
        "(select dept_id from dept where budget < 30000)"
    ),
    "exists_non_equi": (
        "select e.emp_id from emp e where exists "
        "(select * from sales s where s.emp_id = e.emp_id and s.amount > e.salary / 50)"
    ),
    "scalar_min": "select count(*) from emp where salary = (select max(salary) from emp)",
    "double_subquery": (
        "select e.emp_id from emp e where e.salary > (select avg(salary) from emp) "
        "and exists (select * from sales s where s.emp_id = e.emp_id)"
    ),
    "derived_table_join": (
        "select d.dept_name, t.total from dept d, "
        "(select dept_id, sum(salary) as total from emp group by dept_id) as t "
        "where d.dept_id = t.dept_id order by t.total desc"
    ),
    # --- ordering ---
    "order_by_two_keys": "select dept_id, salary from emp order by dept_id asc, salary desc limit 12",
    "order_by_expression_alias": (
        "select emp_id, salary * 2 as double_pay from emp "
        "order by double_pay desc limit 3"
    ),
    "distinct_with_order": "select distinct dept_id from emp order by dept_id desc",
}

ORDERED = {
    "group_by_two_keys", "having_on_avg", "agg_of_expression",
    "expression_of_aggs", "three_way_with_filters", "order_by_two_keys",
    "order_by_expression_alias", "distinct_with_order", "derived_table_join",
}


@pytest.fixture(scope="module")
def clusters():
    return {
        name: make_company_cluster(maker())
        for name, maker in (
            ("IC", SystemConfig.ic),
            ("IC+", SystemConfig.ic_plus),
            ("IC+M", SystemConfig.ic_plus_m),
        )
    }


@pytest.fixture(scope="module")
def oracle_store():
    return make_company_store()


@pytest.mark.parametrize("name", sorted(BATTERY))
def test_battery_case(name, clusters, oracle_store):
    sql = BATTERY[name]
    logical = SqlToRelConverter(oracle_store.catalog).convert(parse(sql))
    expected = normalise(naive_execute(logical, oracle_store), name in ORDERED)
    for system, cluster in clusters.items():
        outcome = cluster.try_sql(sql)
        assert outcome.ok, (system, name, outcome.status, outcome.error)
        assert normalise(outcome.rows, name in ORDERED) == expected, (
            system, name,
        )
