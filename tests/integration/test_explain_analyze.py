"""Tests for EXPLAIN ANALYZE: per-operator actuals on executed plans."""

import pytest

from repro.common.config import SystemConfig

from helpers import make_company_cluster


@pytest.fixture(scope="module")
def cluster():
    return make_company_cluster(SystemConfig.ic_plus())


def test_actuals_are_recorded(cluster):
    result = cluster.sql(
        "select dept_id, count(*) from emp group by dept_id"
    )
    assert result.operator_actuals
    assert all(
        rows >= 0 and units >= 0
        for rows, units in result.operator_actuals.values()
    )


def test_explain_analyze_renders_fragments_and_actuals(cluster):
    result = cluster.sql(
        "select e.name from emp e, sales s where e.emp_id = s.emp_id "
        "and s.amount > 4000"
    )
    text = result.explain_analyze()
    assert "RootFragment" in text
    assert "actual rows=" in text
    assert "units=" in text


def test_scan_actuals_match_table_size(cluster):
    result = cluster.sql("select emp_id from emp")
    scans = [
        (rows, units)
        for op_id, (rows, units) in result.operator_actuals.items()
    ]
    # Some operator (the scan) saw every employee row.
    assert any(rows == 120 for rows, _ in scans)


def test_filter_actuals_reflect_selectivity(cluster):
    result = cluster.sql("select emp_id from emp where emp_id <= 10")
    final_rows = result.row_count
    assert final_rows == 10
    text = result.explain_analyze()
    assert "actual rows=10" in text


def test_root_fragment_listed_last(cluster):
    result = cluster.sql(
        "select dept_id, count(*) from emp group by dept_id"
    )
    lines = result.explain_analyze().splitlines()
    fragment_headers = [
        i for i, line in enumerate(lines)
        if line.startswith(("Fragment", "RootFragment"))
    ]
    assert lines[fragment_headers[-1]].startswith("RootFragment")
