"""Scaling behaviour: latencies and result sizes respond sanely to data
size, site count and the paper's methodology knobs."""

import pytest

from repro.bench.tpch import QUERIES, cached_tpch_data, load_tpch_cluster
from repro.common.config import SystemConfig


class TestScaleFactorSweep:
    @pytest.mark.parametrize("qid", [1, 3, 6, 12])
    def test_latency_grows_with_scale_factor(self, qid):
        latencies = []
        for sf in (0.1, 0.2, 0.4):
            cluster = load_tpch_cluster(SystemConfig.ic_plus(4), sf)
            latencies.append(cluster.sql(QUERIES[qid].sql).simulated_seconds)
        assert latencies[0] < latencies[2], latencies

    def test_data_grows_linearly(self):
        small = cached_tpch_data(0.1)
        large = cached_tpch_data(0.4)
        ratio = len(large["lineitem"]) / len(small["lineitem"])
        assert 3.0 < ratio < 5.5


class TestSiteScaling:
    """"All 8-site configurations consistently outperformed their 4-site
    counterparts in all tests" (Section 6.1)."""

    @pytest.mark.parametrize("qid", [1, 3, 7, 10, 12, 18])
    def test_eight_sites_not_slower(self, qid):
        four = load_tpch_cluster(SystemConfig.ic_plus(4), 0.5)
        eight = load_tpch_cluster(SystemConfig.ic_plus(8), 0.5)
        a = four.sql(QUERIES[qid].sql).simulated_seconds
        b = eight.sql(QUERIES[qid].sql).simulated_seconds
        assert b <= a * 1.10, (qid, a, b)

    def test_results_independent_of_site_count(self):
        four = load_tpch_cluster(SystemConfig.ic_plus(4), 0.2)
        eight = load_tpch_cluster(SystemConfig.ic_plus(8), 0.2)
        a = four.sql(QUERIES[10].sql).rows
        b = eight.sql(QUERIES[10].sql).rows
        assert [r[0] for r in a] == [r[0] for r in b]


class TestPartitionCountKnob:
    def test_more_partitions_same_results(self):
        base = load_tpch_cluster(SystemConfig.ic_plus(4), 0.1)
        finer = load_tpch_cluster(
            SystemConfig.ic_plus(4).with_(partitions_per_table=16), 0.1
        )
        a = sorted(base.sql(QUERIES[6].sql).rows)
        b = sorted(finer.sql(QUERIES[6].sql).rows)
        assert a == pytest.approx(b)
