"""NULL join-key / NULL-ordering / OFFSET regression tests.

These pin the SQL semantics the correctness sweep fixed, on *both*
execution backends:

* a NULL equi-join key matches nothing — not even another NULL — on
  either side of INNER and LEFT joins;
* ORDER BY uses one total order in which NULL sorts after every value
  (so ASC puts NULLs last, DESC puts them first);
* GROUP BY treats NULL as a grouping value of its own;
* OFFSET drops rows after sorting, and the limit operator's work-unit
  charge covers every row it consumed (offset + fetch), not just the
  rows it emitted.

The expectations are hardcoded (not oracle-relative) so a backend and
the reference executor regressing *together* still fails the build.
"""

import pytest

from helpers import make_company_cluster
from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.config import PRESETS
from repro.common.constants import RPTC
from repro.core.cluster import IgniteCalciteCluster
from repro.exec.physical import PhysLimit, PhysNode
from repro.verify.differential import differential_check

pytestmark = pytest.mark.columnar

LEFT_ROWS = [
    (1, 10, "a"),
    (2, None, "b"),
    (3, 20, "c"),
    (4, None, "d"),
    (5, 30, "e"),
]
RIGHT_ROWS = [
    (1, 10, "r10"),
    (2, 10, "r10b"),
    (3, None, "rnull"),
    (4, 40, "r40"),
]


@pytest.fixture
def null_cluster(execution_backend):
    config = PRESETS["IC+"](4).with_(execution_backend=execution_backend)
    cluster = IgniteCalciteCluster(config)
    cluster.create_table(
        TableSchema(
            "tl",
            [
                Column("id", ColumnType.INTEGER),
                Column("k", ColumnType.INTEGER, nullable=True),
                Column("v", ColumnType.VARCHAR),
            ],
            ["id"],
        ),
        LEFT_ROWS,
    )
    cluster.create_table(
        TableSchema(
            "tr",
            [
                Column("id", ColumnType.INTEGER),
                Column("k", ColumnType.INTEGER, nullable=True),
                Column("w", ColumnType.VARCHAR),
            ],
            ["id"],
        ),
        RIGHT_ROWS,
    )
    return cluster


class TestNullJoinKeys:
    def test_inner_join_null_keys_match_nothing(self, null_cluster):
        result = null_cluster.sql(
            "select tl.id, tr.id from tl join tr on tl.k = tr.k "
            "order by tl.id, tr.id"
        )
        # Only k=10 matches (rows 1 x {1, 2}); the NULLs on either side
        # and the unmatched 20/30/40 keys produce nothing.
        assert result.rows == [(1, 1), (1, 2)]

    def test_left_join_pads_null_key_rows(self, null_cluster):
        result = null_cluster.sql(
            "select tl.id, tr.w from tl left join tr on tl.k = tr.k "
            "order by tl.id, tr.w"
        )
        assert result.rows == [
            (1, "r10"),
            (1, "r10b"),
            (2, None),
            (3, None),
            (4, None),
            (5, None),
        ]

    def test_left_join_empty_right_pads_every_row(self, null_cluster):
        result = null_cluster.sql(
            "select tl.id, tr.w from tl left join tr on tl.k = tr.k "
            "and tr.k > 100 order by tl.id"
        )
        assert result.rows == [(i, None) for i in range(1, 6)]

    def test_group_by_keeps_null_group(self, null_cluster):
        result = null_cluster.sql(
            "select k, count(*) from tl group by k order by k"
        )
        # NULL is one group of its own, ordered last (NULLS LAST).
        assert result.rows == [(10, 1), (20, 1), (30, 1), (None, 2)]

    def test_semi_join_null_keys_match_nothing(self, null_cluster):
        result = null_cluster.sql(
            "select tl.id from tl where exists "
            "(select 1 from tr where tr.k = tl.k) order by tl.id"
        )
        # Only the k=10 row survives the SEMI join; NULL keys on either
        # side never witness the EXISTS.
        assert result.rows == [(1,)]

    def test_anti_join_keeps_null_key_rows(self, null_cluster):
        result = null_cluster.sql(
            "select tl.id from tl where not exists "
            "(select 1 from tr where tr.k = tl.k) order by tl.id"
        )
        # NULL-keyed left rows match nothing, so the ANTI join keeps
        # them (NOT EXISTS is true), alongside the unmatched 20/30 keys.
        assert result.rows == [(2,), (3,), (4,), (5,)]

    def test_differential_oracle_agrees(self, null_cluster):
        for sql in (
            "select tl.id, tr.id from tl join tr on tl.k = tr.k",
            "select tl.id, tr.w from tl left join tr on tl.k = tr.k",
            "select tl.id from tl where exists "
            "(select 1 from tr where tr.k = tl.k)",
            "select tl.id from tl where not exists "
            "(select 1 from tr where tr.k = tl.k)",
            "select k, count(*) from tl group by k",
        ):
            report = differential_check(
                sql, null_cluster.store, null_cluster.config
            )
            assert report.status == "ok", f"{sql}: {report.detail}"


class TestNullOrdering:
    def test_order_by_asc_puts_nulls_last(self, null_cluster):
        result = null_cluster.sql("select k, id from tl order by k, id")
        assert result.rows == [
            (10, 1),
            (20, 3),
            (30, 5),
            (None, 2),
            (None, 4),
        ]

    def test_order_by_desc_reverses_the_total_order(self, null_cluster):
        result = null_cluster.sql("select k, id from tl order by k desc, id")
        assert result.rows == [
            (None, 2),
            (None, 4),
            (30, 5),
            (20, 3),
            (10, 1),
        ]


def _find_limits(plan: PhysNode):
    found = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, PhysLimit):
            found.append(node)
        stack.extend(
            c for c in node.inputs if isinstance(c, PhysNode)
        )
    return found


class TestOffset:
    @pytest.fixture
    def cluster(self, execution_backend):
        return make_company_cluster(
            PRESETS["IC+"](4).with_(execution_backend=execution_backend)
        )

    def test_offset_after_sort(self, cluster):
        everything = cluster.sql(
            "select emp_id from emp order by emp_id"
        ).rows
        page = cluster.sql(
            "select emp_id from emp order by emp_id limit 5 offset 7"
        ).rows
        assert page == everything[7:12]

    def test_offset_past_end_is_empty(self, cluster):
        result = cluster.sql(
            "select emp_id from emp order by emp_id limit 5 offset 1000"
        )
        assert result.rows == []

    def test_limit_charges_for_consumed_rows(self, cluster):
        plan = cluster.plan_sql("select emp_id from emp limit 5 offset 7")
        assert _find_limits(plan), "expected a PhysLimit in the plan"
        result = cluster.execute_plan(plan)
        assert len(result.rows) == 5
        # Actuals are keyed by the *fragment* trees' nodes (fragmenting
        # rewrites exchanges into sender/receiver pairs).
        limits = [
            node
            for fragment in result.fragment_trees
            for node in _find_limits(fragment.root)
        ]
        assert limits, "expected a PhysLimit in the executed fragments"
        for node in limits:
            if node.offset is None:
                continue
            rows_in = result.operator_rows_in[id(node)]
            consumed = min(rows_in, (node.offset or 0) + (node.fetch or 0))
            rows_out, units = result.operator_actuals[id(node)]
            assert rows_out == len(result.rows)
            # The seed bug: charging only the emitted rows, letting an
            # OFFSET page deep into a table for (almost) free.
            assert units == pytest.approx(consumed * RPTC)
        # FragmentStats must agree with the per-operator actuals: the
        # root fragment emits the page, not the consumed prefix.
        root_id = next(
            f.fragment_id for f in result.fragment_trees if f.sender is None
        )
        root = [f for f in result.fragments if f.fragment_id == root_id]
        assert root and root[0].rows_out == 5
