"""Integration tests for adaptive re-planning (plan cache + feedback).

The acceptance behaviours pinned here:

* a second planning of the identical query spends **zero** planner budget
  ticks and increments ``plan_cache.hits``;
* on a skewed join, ``max_q_error()`` strictly decreases after one
  feedback-driven replan, with identical result rows before and after;
* EXPLAIN / traced / fault-injected runs bypass the cache entirely — a
  traced run after a cached run still emits the full hep/volcano spans;
* DDL invalidates both the cache and the harvested feedback.
"""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.common.config import PRESETS, SystemConfig
from repro.obs.metrics import get_registry

from helpers import make_company_cluster

pytestmark = pytest.mark.adaptive

ADAPTIVE = dict(
    plan_cache=True, cardinality_feedback=True, replan_q_error_threshold=2.0
)


def skewed_cluster(**overrides):
    """customers(100) joined by orders(2000) where 90 % of orders hit
    customer 1 — equality selectivity on the skewed column is badly
    under-estimated until feedback corrects it."""
    from repro.core.cluster import IgniteCalciteCluster

    config = SystemConfig.ic_plus(4).with_(**{**ADAPTIVE, **overrides})
    cluster = IgniteCalciteCluster(config)
    cluster.create_table(
        TableSchema(
            "customers",
            [
                Column("id", ColumnType.INTEGER),
                Column("name", ColumnType.VARCHAR),
            ],
            ["id"],
        ),
        [(i, f"c{i}") for i in range(100)],
    )
    cluster.create_table(
        TableSchema(
            "orders",
            [
                Column("oid", ColumnType.INTEGER),
                Column("customer_id", ColumnType.INTEGER),
            ],
            ["oid"],
        ),
        [(i, 1 if i % 10 != 0 else (i % 100)) for i in range(2000)],
    )
    return cluster


SKEWED_JOIN = (
    "SELECT o.oid, c.name FROM orders o JOIN customers c "
    "ON o.customer_id = c.id WHERE o.customer_id = 1"
)


class TestPlanCacheHit:
    def test_second_planning_spends_zero_ticks(self):
        cluster = make_company_cluster(SystemConfig.ic_plus(4, **ADAPTIVE))
        registry = get_registry()
        sql = "select name from emp where salary > 50000"
        first = cluster.sql(sql)
        before = registry.snapshot()
        second = cluster.sql(sql)
        delta = registry.delta_since(before)
        assert delta.get("plan_cache.hits") == 1.0
        # the planner never ran: no query planned, no budget ticks
        assert "planner.queries_planned" not in delta
        assert delta.get("planner.budget_spent_sum", 0.0) == 0.0
        assert sorted(first.rows) == sorted(second.rows)

    def test_literal_change_is_a_miss(self):
        cluster = make_company_cluster(SystemConfig.ic_plus(4, **ADAPTIVE))
        registry = get_registry()
        cluster.sql("select name from emp where salary > 50000")
        before = registry.snapshot()
        cluster.sql("select name from emp where salary > 90000")
        delta = registry.delta_since(before)
        assert delta.get("plan_cache.misses") == 1.0
        assert delta.get("planner.queries_planned") == 1.0

    def test_cache_off_by_default(self):
        cluster = make_company_cluster(SystemConfig.ic_plus(4))
        assert cluster.adaptive is None
        registry = get_registry()
        cluster.sql("select name from emp")
        cluster.sql("select name from emp")
        assert registry.counter("plan_cache.hits") == 0.0
        assert registry.counter("planner.queries_planned") == 2.0


class TestFeedbackReplan:
    def test_q_error_strictly_decreases_with_identical_rows(self):
        cluster = skewed_cluster()
        registry = get_registry()
        first = cluster.sql(SKEWED_JOIN)
        assert first.max_q_error() > cluster.adaptive.threshold
        second = cluster.sql(SKEWED_JOIN)
        assert registry.counter("plan_cache.replans") == 1.0
        assert second.max_q_error() < first.max_q_error()
        assert sorted(first.rows) == sorted(second.rows)
        # the replacement entry is the replan product; a third run hits
        third = cluster.sql(SKEWED_JOIN)
        assert registry.counter("plan_cache.replans") == 1.0  # no churn
        assert sorted(third.rows) == sorted(first.rows)

    def test_replanned_entry_not_evicted_again(self):
        cluster = skewed_cluster()
        cluster.sql(SKEWED_JOIN)
        cluster.sql(SKEWED_JOIN)
        key = next(iter(cluster.adaptive.cache._entries))
        entry = cluster.adaptive.cache.peek(key)
        assert entry.replanned
        cluster.sql(SKEWED_JOIN)
        assert cluster.adaptive.cache.peek(key) is not None

    def test_feedback_only_mode_never_caches(self):
        cluster = skewed_cluster(plan_cache=False)
        registry = get_registry()
        cluster.sql(SKEWED_JOIN)
        second = cluster.sql(SKEWED_JOIN)
        assert registry.counter("plan_cache.hits") == 0.0
        assert registry.counter("planner.queries_planned") == 2.0
        # harvested actuals still tighten the second plan's estimates
        assert second.max_q_error() <= 1.5


class TestBypassGuards:
    def test_explain_never_serves_or_populates(self):
        cluster = make_company_cluster(SystemConfig.ic_plus(4, **ADAPTIVE))
        registry = get_registry()
        sql = "select name from emp where salary > 50000"
        cluster.sql(sql)  # populate
        before = registry.snapshot()
        cluster.explain_analyze(sql)
        delta = registry.delta_since(before)
        assert "plan_cache.hits" not in delta
        assert "plan_cache.misses" not in delta
        assert delta.get("planner.queries_planned") == 1.0

    def test_traced_run_after_cached_run_emits_planner_spans(self):
        """Regression: a trace must show the full hep/volcano pipeline
        even when a cached plan exists for the query."""
        cluster = make_company_cluster(SystemConfig.ic_plus(4, **ADAPTIVE))
        sql = "select name from emp where salary > 50000"
        cluster.sql(sql)
        cluster.sql(sql)  # cached now
        cluster.config = cluster.config.with_(tracing=True)
        traced = cluster.sql(sql)
        names = _span_names(cluster.last_trace.spans())
        assert {"hep", "volcano-logical", "volcano-physical"} <= names
        for span in _walk_spans(cluster.last_trace.spans()):
            ticks = span.attrs.get("budget_spent")
            if ticks is not None:
                assert ticks >= 0
        # and the traced run neither hit nor repopulated the cache
        registry = get_registry()
        assert registry.counter("plan_cache.hits") == 1.0
        fresh = sorted(traced.rows)
        assert fresh == sorted(cluster.sql(sql).rows)

    def test_fault_injected_cluster_bypasses_cache(self):
        from repro.faults.injector import parse_fault

        config = SystemConfig.ic_plus(4).with_(
            **ADAPTIVE, faults=(parse_fault("slow-site", "1x2@t=0.0"),)
        )
        cluster = make_company_cluster(config)
        registry = get_registry()
        sql = "select name from emp"
        cluster.sql(sql)
        cluster.sql(sql)
        assert registry.counter("plan_cache.hits") == 0.0
        assert registry.counter("plan_cache.misses") == 0.0
        assert cluster.adaptive.feedback is None or not len(
            cluster.adaptive.feedback
        )


class TestInvalidation:
    def test_ddl_wipes_cache_and_feedback(self):
        cluster = make_company_cluster(SystemConfig.ic_plus(4, **ADAPTIVE))
        registry = get_registry()
        sql = "select name from emp where salary > 50000"
        cluster.sql(sql)
        assert len(cluster.adaptive.cache) == 1
        assert len(cluster.adaptive.feedback) > 0
        cluster.create_index("emp", "emp_salary", ["salary"])
        assert len(cluster.adaptive.cache) == 0
        assert len(cluster.adaptive.feedback) == 0
        assert registry.counter("plan_cache.invalidations") == 1.0
        before = registry.snapshot()
        cluster.sql(sql)
        assert registry.delta_since(before).get("plan_cache.misses") == 1.0

    def test_capacity_one_still_correct(self):
        cluster = make_company_cluster(
            SystemConfig.ic_plus(4, **{**ADAPTIVE, "plan_cache_capacity": 1})
        )
        a = "select name from emp where salary > 50000"
        b = "select dept_id, count(*) from emp group by dept_id"
        ra1 = cluster.sql(a)
        rb1 = cluster.sql(b)  # evicts a
        ra2 = cluster.sql(a)  # miss, replans
        rb2 = cluster.sql(b)
        assert sorted(ra1.rows) == sorted(ra2.rows)
        assert sorted(rb1.rows) == sorted(rb2.rows)
        assert get_registry().counter("plan_cache.evictions") >= 2.0


def _walk_spans(spans):
    for span in spans:
        yield span
        yield from _walk_spans(span.children)


def _span_names(spans):
    return {span.name for span in _walk_spans(spans)}
