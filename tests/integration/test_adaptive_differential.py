"""Differential sweep: the adaptive layer must never change answers.

For every workload (company, TPC-H, SSB) and every system preset (IC,
IC+, IC+M), each query runs three times on a cluster with the plan cache
and cardinality feedback enabled at an aggressive replan threshold — so
the sweep exercises cold plans, cache hits AND feedback-driven replans —
and once on a stock cluster.  All runs must return identical rows.

Replanned plans also pass the structural invariants automatically: the
suite-wide autouse fixture in conftest.py routes every executed plan
through :class:`~repro.verify.invariants.PlanValidator`.
"""

import pytest

from repro.bench.ssb import SSB_QUERIES, load_ssb_cluster
from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import PRESETS

from helpers import make_company_cluster, normalise

pytestmark = [pytest.mark.adaptive, pytest.mark.verify]

SYSTEMS = ("IC", "IC+", "IC+M")

#: Aggressive settings so replans actually fire during the sweep.
ADAPTIVE = dict(
    plan_cache=True, cardinality_feedback=True, replan_q_error_threshold=1.5
)

COMPANY_QUERIES = (
    "select name from emp where salary > 100000",
    "select dept_id, count(*) from emp group by dept_id",
    "select e.name, d.dept_name from emp e, dept d "
    "where e.dept_id = d.dept_id and d.budget > 20000",
    "select e.name, sum(s.amount) from emp e, sales s "
    "where e.emp_id = s.emp_id group by e.name",
    "select region, count(*), sum(amount) from sales "
    "group by region order by region",
    "select name from emp where dept_id in (1, 2, 3) "
    "order by salary desc limit 10",
)

TPCH_QUERY_IDS = tuple(ENABLED_QUERY_IDS)[:6]
SSB_QUERY_IDS = tuple(sorted(SSB_QUERIES))[:4]


def _sweep(adaptive_cluster, fresh_cluster, sql):
    """Three adaptive runs + one stock run; all must agree or all fail."""
    fresh = fresh_cluster.try_sql(sql)
    runs = [adaptive_cluster.try_sql(sql) for _ in range(3)]
    for run in runs:
        assert run.status == fresh.status, sql
    if not fresh.ok:
        return
    reference = normalise(fresh.rows)
    for run in runs:
        assert normalise(run.rows) == reference, sql


@pytest.mark.parametrize("system", SYSTEMS)
def test_company_cached_matches_fresh(system):
    adaptive = make_company_cluster(PRESETS[system](4, **ADAPTIVE))
    fresh = make_company_cluster(PRESETS[system](4))
    for sql in COMPANY_QUERIES:
        _sweep(adaptive, fresh, sql)


@pytest.mark.parametrize("system", SYSTEMS)
def test_tpch_cached_matches_fresh(system):
    adaptive = load_tpch_cluster(PRESETS[system](4, **ADAPTIVE), 0.05)
    fresh = load_tpch_cluster(PRESETS[system](4), 0.05)
    for qid in TPCH_QUERY_IDS:
        _sweep(adaptive, fresh, QUERIES[qid].sql)


@pytest.mark.parametrize("system", SYSTEMS)
def test_ssb_cached_matches_fresh(system):
    adaptive = load_ssb_cluster(PRESETS[system](4, **ADAPTIVE), 0.05)
    fresh = load_ssb_cluster(PRESETS[system](4), 0.05)
    for qid in SSB_QUERY_IDS:
        _sweep(adaptive, fresh, SSB_QUERIES[qid].sql)
