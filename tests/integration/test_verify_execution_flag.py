"""The ``SystemConfig.verify_execution`` flag end to end.

With the flag on, the engine validates every plan it is about to execute
and the cluster facade routes ``sql()`` through the differential harness;
with it off, neither check runs (production behaviour).
"""

import pytest

from helpers import make_company_cluster, make_company_store
from repro.common.config import SystemConfig
from repro.common.errors import (
    PlanInvariantError,
    ResultMismatchError,
    VerificationError,
)
from repro.exec.engine import ExecutionEngine
from repro.planner.volcano import QueryPlanner
from repro.rel.sql2rel import SqlToRelConverter
from repro.sql.parser import parse

SQL = (
    "select e.name, s.amount from emp e, sales s "
    "where e.emp_id = s.emp_id"
)


def raw_execute():
    """The engine's own execute, bypassing the suite-wide validator wrap."""
    return getattr(
        ExecutionEngine.execute, "__wrapped__", ExecutionEngine.execute
    )


class TestEngineFlag:
    def test_flag_rejects_malformed_plan(self):
        config = SystemConfig.ic_plus(4).with_(verify_execution=True)
        store = make_company_store(sites=4)
        logical = SqlToRelConverter(store.catalog).convert(parse(SQL))
        plan = QueryPlanner(store, config).plan(logical)
        plan.rows_est = float("nan")
        engine = ExecutionEngine(store, config)
        with pytest.raises(PlanInvariantError):
            raw_execute()(engine, plan)

    def test_without_flag_malformed_estimate_still_executes(self):
        # A bad estimate is an accounting defect, not an execution error;
        # production runs must not pay the validation cost or refuse.
        config = SystemConfig.ic_plus(4)
        store = make_company_store(sites=4)
        logical = SqlToRelConverter(store.catalog).convert(parse(SQL))
        plan = QueryPlanner(store, config).plan(logical)
        plan.rows_est = float("nan")
        engine = ExecutionEngine(store, config)
        result = raw_execute()(engine, plan)
        assert len(result.rows) == 500

    def test_flag_passes_clean_plan_through(self):
        config = SystemConfig.ic_plus(4).with_(verify_execution=True)
        store = make_company_store(sites=4)
        logical = SqlToRelConverter(store.catalog).convert(parse(SQL))
        plan = QueryPlanner(store, config).plan(logical)
        engine = ExecutionEngine(store, config)
        result = raw_execute()(engine, plan)
        assert len(result.rows) == 500


class TestClusterFlag:
    def test_sql_runs_differentially_and_returns_rows(self):
        cluster = make_company_cluster(
            SystemConfig.ic_plus(4).with_(verify_execution=True)
        )
        result = cluster.sql(SQL)
        assert len(result.rows) == 500
        assert result.simulated_seconds > 0

    def test_sql_raises_verification_error_on_divergence(self, monkeypatch):
        import repro.verify.differential as differential

        monkeypatch.setattr(
            differential,
            "compare_results",
            lambda engine_rows, reference_rows, logical=None: "forced",
        )
        cluster = make_company_cluster(
            SystemConfig.ic_plus(4).with_(verify_execution=True)
        )
        with pytest.raises(ResultMismatchError) as excinfo:
            cluster.sql(SQL)
        assert isinstance(excinfo.value, VerificationError)
        assert SQL in excinfo.value.sql

    def test_sql_unverified_by_default(self, monkeypatch):
        # The differential path must not run unless the flag is set.
        import repro.verify.differential as differential

        def explode(*args, **kwargs):
            raise AssertionError("differential_check ran without the flag")

        monkeypatch.setattr(
            differential, "differential_check", explode
        )
        cluster = make_company_cluster(SystemConfig.ic_plus(4))
        assert len(cluster.sql(SQL).rows) == 500
