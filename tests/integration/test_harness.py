"""Integration tests for the benchmark harness (Section 6.1-6.3 methodology)."""

import pytest

from repro.bench.harness import (
    ResponseTimeHarness,
    confidence_interval_95,
    run_aql,
)
from repro.bench.tpch import (
    ENABLED_QUERY_IDS,
    IC_FAILING_QUERY_IDS,
    QUERIES,
    load_tpch_cluster,
)
from repro.common.config import SystemConfig
from repro.core.cluster import QueryStatus

AQL_QUERIES = {
    f"Q{qid}": QUERIES[qid].sql
    for qid in (1, 3, 6, 12, 14)
}


class TestResponseTimeHarness:
    def test_measures_and_classifies(self):
        queries = {"Q1": QUERIES[1].sql, "Q2": QUERIES[2].sql}
        harness = ResponseTimeHarness(
            load_tpch_cluster, queries, scale_factors=(0.1,)
        )
        result = harness.run(SystemConfig.ic(4))
        assert result.latency("Q1", 0.1) > 0
        assert result.latency("Q2", 0.1) is None
        assert result.cells[("Q2", 0.1)].status is QueryStatus.PLANNING_FAILED

    def test_mean_gain_over(self):
        queries = {"Q6": QUERIES[6].sql}
        harness = ResponseTimeHarness(
            load_tpch_cluster, queries, scale_factors=(0.1, 0.2)
        )
        base = harness.run(SystemConfig.ic(4))
        improved = harness.run(SystemConfig.ic_plus(4))
        gain = improved.mean_gain_over(base, "Q6", (0.1, 0.2))
        assert gain == pytest.approx(1.0, rel=0.1)

    def test_gain_none_when_baseline_always_fails(self):
        queries = {"Q2": QUERIES[2].sql}
        harness = ResponseTimeHarness(
            load_tpch_cluster, queries, scale_factors=(0.1,)
        )
        base = harness.run(SystemConfig.ic(4))
        improved = harness.run(SystemConfig.ic_plus(4))
        assert improved.mean_gain_over(base, "Q2", (0.1,)) is None

    def test_repeats_are_deterministic(self):
        queries = {"Q6": QUERIES[6].sql}
        one = ResponseTimeHarness(load_tpch_cluster, queries, (0.1,), repeats=1)
        three = ResponseTimeHarness(load_tpch_cluster, queries, (0.1,), repeats=3)
        a = one.run(SystemConfig.ic_plus(4)).latency("Q6", 0.1)
        b = three.run(SystemConfig.ic_plus(4)).latency("Q6", 0.1)
        assert a == pytest.approx(b)


class TestAql:
    @pytest.fixture(scope="class")
    def cluster(self):
        return load_tpch_cluster(SystemConfig.ic_plus(4), 0.1)

    def test_basic_run(self, cluster):
        result = run_aql(cluster, AQL_QUERIES, clients=2, duration_seconds=60)
        assert result.completed > 0
        assert result.average_latency > 0
        assert result.clients == 2

    def test_more_clients_complete_more_queries(self, cluster):
        two = run_aql(cluster, AQL_QUERIES, clients=2, duration_seconds=60)
        eight = run_aql(cluster, AQL_QUERIES, clients=8, duration_seconds=60)
        assert eight.completed > two.completed

    def test_contention_raises_latency(self, cluster):
        two = run_aql(cluster, AQL_QUERIES, clients=2, duration_seconds=120)
        sixteen = run_aql(cluster, AQL_QUERIES, clients=16, duration_seconds=120)
        assert sixteen.average_latency > two.average_latency

    def test_deterministic_for_fixed_seed(self, cluster):
        a = run_aql(cluster, AQL_QUERIES, clients=4, duration_seconds=60, seed=9)
        b = run_aql(cluster, AQL_QUERIES, clients=4, duration_seconds=60, seed=9)
        assert a.average_latency == pytest.approx(b.average_latency)
        assert a.completed == b.completed

    def test_failing_query_raises(self, cluster_ic=None):
        ic = load_tpch_cluster(SystemConfig.ic(4), 0.1)
        with pytest.raises(RuntimeError):
            run_aql(ic, {"Q2": QUERIES[2].sql}, clients=1, duration_seconds=10)

    def test_paper_workload_excludes_baseline_casualties(self):
        assert set(IC_FAILING_QUERY_IDS) == {2, 5, 9, 17, 19, 21}
        workload = [
            qid for qid in ENABLED_QUERY_IDS if qid not in IC_FAILING_QUERY_IDS
        ]
        assert len(workload) == 14


class TestConfidenceInterval:
    def test_single_value_has_zero_width(self):
        mean, half = confidence_interval_95([3.0])
        assert mean == 3.0 and half == 0.0

    def test_symmetric_values(self):
        mean, half = confidence_interval_95([1.0, 3.0])
        assert mean == 2.0
        assert half > 0
