"""Integration tests for the Section 1 / Section 6 baseline failure modes.

The paper: "Of the 22 TPC-H queries, eight failed to execute using a
standard deployment."  Each failure mode is asserted with its *kind*, and
each fix is asserted to resolve it.
"""

import pytest

from repro.bench.tpch import QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig
from repro.common.errors import PlanningTimeoutError
from repro.core.cluster import QueryStatus

SF = 0.5


@pytest.fixture(scope="module")
def ic():
    return load_tpch_cluster(SystemConfig.ic(4), SF)


@pytest.fixture(scope="module")
def ic_plus():
    return load_tpch_cluster(SystemConfig.ic_plus(4), SF)


class TestUnsupportedFeatures:
    def test_q15_views_unsupported_everywhere(self, ic, ic_plus):
        for cluster in (ic, ic_plus):
            outcome = cluster.try_sql(QUERIES[15].sql)
            assert outcome.status is QueryStatus.UNSUPPORTED

    def test_q20_planner_defect_everywhere(self, ic, ic_plus):
        for cluster in (ic, ic_plus):
            outcome = cluster.try_sql(QUERIES[20].sql)
            assert outcome.status is QueryStatus.PLANNER_DEFECT

    def test_q20_runs_when_defect_fixed(self):
        cluster = load_tpch_cluster(
            SystemConfig.ic_plus(4).with_(q20_defect_fixed=True), 0.2
        )
        outcome = cluster.try_sql(QUERIES[20].sql)
        assert outcome.ok, outcome.error


class TestPlanningFailures:
    @pytest.mark.parametrize("qid", [2, 5, 9])
    def test_baseline_fails_to_plan(self, ic, qid):
        outcome = ic.try_sql(QUERIES[qid].sql)
        assert outcome.status is QueryStatus.PLANNING_FAILED
        assert isinstance(outcome.error, PlanningTimeoutError)
        assert outcome.error.spent > outcome.error.budget

    @pytest.mark.parametrize("qid", [2, 5, 9])
    def test_two_phase_planner_succeeds(self, ic_plus, qid):
        outcome = ic_plus.try_sql(QUERIES[qid].sql)
        assert outcome.ok, (qid, outcome.status, outcome.error)


class TestExecutionTimeouts:
    @pytest.mark.parametrize("qid", [17, 19, 21])
    def test_baseline_exceeds_runtime_limit(self, ic, qid):
        outcome = ic.try_sql(QUERIES[qid].sql)
        assert outcome.status is QueryStatus.TIMEOUT

    @pytest.mark.parametrize("qid", [17, 19, 21])
    def test_improved_system_completes_quickly(self, ic_plus, qid):
        outcome = ic_plus.try_sql(QUERIES[qid].sql)
        assert outcome.ok
        # "all six of these queries completed execution in under one
        # minute on average in IC+" — scaled, far under the limit.
        assert outcome.simulated_seconds < 2.0


class TestEverythingElseRuns:
    @pytest.mark.parametrize(
        "qid", [1, 3, 4, 6, 7, 8, 10, 11, 12, 13, 14, 16, 18, 22]
    )
    def test_baseline_completes(self, ic, qid):
        assert ic.try_sql(QUERIES[qid].sql).ok

    @pytest.mark.parametrize(
        "qid", [1, 3, 4, 6, 7, 8, 10, 11, 12, 13, 14, 16, 17, 18, 19, 21, 22]
    )
    def test_improved_never_slower(self, ic, ic_plus, qid):
        """Per-query response time: IC+ >= IC on every comparable query."""
        base = ic.try_sql(QUERIES[qid].sql)
        improved = ic_plus.try_sql(QUERIES[qid].sql)
        assert improved.ok
        if base.ok:
            assert improved.simulated_seconds <= base.simulated_seconds * 1.15
