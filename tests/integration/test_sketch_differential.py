"""The sketch-statistics differential cell: 9 cells x 2 backends.

Sketch estimates may only change *plans*, never *answers*.  This sweep
runs the full sketchbench query set with ``sketch_statistics=True``
across company/TPC-H/SSB x IC/IC+/IC+M under both execution backends
and demands:

* rows identical to the single-node reference executor in every cell
  (order-identical to the histograms-only run is asserted separately by
  the bench's own differential columns — here the oracle is the truth);
* plan invariants hold (the autouse conftest wrapper validates every
  executed plan structurally);
* a traced run of the headline query still produces a valid
  ``repro-trace/v1`` artefact with sketches on.
"""

import pytest

from repro.bench.sketchbench import (
    _LOADERS,
    SKETCHBENCH_QUERIES,
    _canon,
    _sorted_rows,
)
from repro.common.config import PRESETS
from repro.obs.trace import validate_trace
from repro.verify.reference import ReferenceExecutor

pytestmark = [pytest.mark.sketch, pytest.mark.verify]

SYSTEMS = ("IC", "IC+", "IC+M")
SCALE = 0.05
SEED = 7


@pytest.mark.parametrize("bench", sorted(SKETCHBENCH_QUERIES))
def test_sketch_cell_matches_oracle(bench, execution_backend):
    for system in SYSTEMS:
        config = PRESETS[system](4).with_(
            sketch_statistics=True, execution_backend=execution_backend
        )
        cluster = _LOADERS[bench](config, SCALE, SEED)
        oracle = ReferenceExecutor(cluster.store)
        for name, sql in SKETCHBENCH_QUERIES[bench].items():
            result = cluster.sql(sql)
            reference = oracle.execute(cluster.parse_to_logical(sql))
            assert _sorted_rows(result.rows) == _sorted_rows(reference), (
                f"{bench}/{system}/{name} diverged from the oracle "
                f"under the {execution_backend} backend"
            )


@pytest.mark.parametrize("bench", sorted(SKETCHBENCH_QUERIES))
def test_sketch_rows_order_identical_to_histogram_rows(bench):
    """Within each cell the sketch run returns the histogram run's rows
    *in the same order* — every bench query carries an ORDER BY over
    keys unique in the output, so plan changes may not reorder them."""
    for system in SYSTEMS:
        base = PRESETS[system](4)
        hist_cluster = _LOADERS[bench](base, SCALE, SEED)
        sketch_cluster = _LOADERS[bench](
            base.with_(sketch_statistics=True), SCALE, SEED
        )
        for name, sql in SKETCHBENCH_QUERIES[bench].items():
            assert _canon(hist_cluster.sql(sql).rows) == _canon(
                sketch_cluster.sql(sql).rows
            ), f"{bench}/{system}/{name}: sketches changed the answer"


def test_traced_run_stays_valid_with_sketches_on():
    config = PRESETS["IC+M"](4).with_(sketch_statistics=True, tracing=True)
    cluster = _LOADERS["tpch"](config, SCALE, SEED)
    sql = SKETCHBENCH_QUERIES["tpch"]["T2"]
    cluster.sql(sql)
    artefact = cluster.last_trace.to_dict(query="T2", system="IC+M")
    assert validate_trace(artefact) == []
