"""Integration tests for the fault-injection and resilience layer.

The fast smoke test (one injected site failure, end to end, recovered
answer checked against the oracle) runs in the default tier-1 sweep; the
heavier schedules are marked ``chaos``.
"""

import pytest

from helpers import make_company_cluster
from repro.common.config import SystemConfig
from repro.core.cluster import QueryStatus
from repro.faults import run_chaos
from repro.faults.injector import (
    ExchangeDrop,
    FragmentOom,
    SiteCrash,
    random_schedule,
)

WORKLOAD = {
    "join": (
        "select e.name, s.amount from emp e, sales s "
        "where e.emp_id = s.emp_id and s.amount > 2500"
    ),
    "agg": (
        "select region, count(*), sum(amount) from sales "
        "group by region order by region"
    ),
    "scan": "select emp_id, name from emp where salary > 150000",
}


def chaos_config(**overrides):
    return SystemConfig.ic_plus(4).with_(**overrides)


class TestSmoke:
    def test_single_site_failure_end_to_end(self):
        # The tier-1 smoke: site 1 dies almost immediately, every query
        # still answers, and every answer matches the fault-free run.
        config = chaos_config(
            faults=(SiteCrash(site=1, at=0.001),), max_retries=2
        )
        report = run_chaos(
            make_company_cluster(config), WORKLOAD, seed=0
        )
        assert report.availability == 1.0
        assert report.oracle_clean
        assert all(r.succeeded for r in report.records)
        # At least the queries submitted after the crash ran degraded.
        assert any(r.degraded for r in report.records)

    def test_fault_free_run_is_all_ok(self):
        report = run_chaos(
            make_company_cluster(chaos_config()), WORKLOAD, seed=0
        )
        assert report.status_counts == {"ok": len(WORKLOAD)}
        assert report.total_retries == 0
        assert report.oracle_clean


class TestDeterminism:
    def test_same_seed_same_report(self):
        config = chaos_config(
            faults=(SiteCrash(site=2, at=0.0005),), max_retries=2
        )
        first = run_chaos(make_company_cluster(config), WORKLOAD, seed=3)
        second = run_chaos(make_company_cluster(config), WORKLOAD, seed=3)
        assert first.to_text() == second.to_text()

    def test_injector_reset_between_runs_on_one_cluster(self):
        # One-shot faults re-arm per run: the same cluster object must
        # produce the same report twice.
        config = chaos_config(
            faults=(ExchangeDrop(exchange_id=-1, at=0.0),), max_retries=2
        )
        cluster = make_company_cluster(config)
        first = run_chaos(cluster, WORKLOAD, seed=1)
        second = run_chaos(cluster, WORKLOAD, seed=1)
        assert first.to_text() == second.to_text()
        assert first.total_retries >= 1

    @pytest.mark.chaos
    def test_random_schedule_replay(self):
        schedule = random_schedule(
            seed=11, sites=4, horizon_seconds=0.02, crashes=2, slowdowns=1
        )
        config = chaos_config(faults=schedule, max_retries=3)
        first = run_chaos(make_company_cluster(config), WORKLOAD, seed=11)
        second = run_chaos(make_company_cluster(config), WORKLOAD, seed=11)
        assert first.to_text() == second.to_text()
        assert first.availability == 1.0
        assert first.oracle_clean


class TestRetrySemantics:
    def test_oom_killed_fragment_recovers_on_retry(self):
        config = chaos_config(
            faults=(FragmentOom(fragment_id=-1, at=0.0),), max_retries=1
        )
        report = run_chaos(
            make_company_cluster(config), WORKLOAD, seed=0, shuffle=False
        )
        first = report.records[0]
        assert first.status is QueryStatus.RETRIED
        assert first.attempts == 2
        assert first.oracle_ok
        # Backoff advanced the chaos clock beyond the pure execution time.
        assert first.elapsed > first.latency

    def test_retries_exhausted_leaves_failure_status(self):
        # Three one-shot OOMs against one allowed retry: the first query
        # burns both attempts and fails; the next query consumes the third
        # OOM, retries, and succeeds.
        config = chaos_config(
            faults=(
                FragmentOom(fragment_id=-1, at=0.0),
                FragmentOom(fragment_id=-1, at=0.0),
                FragmentOom(fragment_id=-1, at=0.0),
            ),
            max_retries=1,
        )
        report = run_chaos(
            make_company_cluster(config), WORKLOAD, seed=0, shuffle=False
        )
        first, second = report.records[0], report.records[1]
        assert not first.succeeded
        assert first.status is QueryStatus.FAILED_SITE
        assert first.attempts == 2
        assert second.status is QueryStatus.RETRIED
        assert report.availability == pytest.approx(2 / 3)


class TestBudgetExhaustion:
    def test_timed_out_leaks_no_partial_rows(self):
        # The work-unit budget dies mid-fragment: the outcome must be
        # TIMED_OUT with no result object, and reading rows must raise
        # rather than surface whatever the operators had produced so far.
        config = chaos_config(runtime_limit_seconds=1e-9)
        cluster = make_company_cluster(config)
        outcome = cluster.try_sql(WORKLOAD["join"])
        assert outcome.status is QueryStatus.TIMED_OUT
        assert outcome.result is None
        with pytest.raises(RuntimeError):
            outcome.rows
        with pytest.raises(RuntimeError):
            outcome.simulated_seconds

    def test_timed_out_is_retryable_but_stays_failed(self):
        config = chaos_config(runtime_limit_seconds=1e-9, max_retries=2)
        report = run_chaos(
            make_company_cluster(config),
            {"join": WORKLOAD["join"]},
            seed=0,
            shuffle=False,
        )
        record = report.records[0]
        assert record.status is QueryStatus.TIMED_OUT
        assert record.attempts == 3  # initial try + both retries
        assert not record.succeeded
        assert report.availability == 0.0


class TestDeadline:
    def test_deadline_fails_queries_the_budget_allows(self):
        # A deadline tighter than any query's makespan: everything times
        # out even though the work-unit budget is untouched.
        config = chaos_config(query_deadline_seconds=1e-9, max_retries=0)
        report = run_chaos(
            make_company_cluster(config), WORKLOAD, seed=0, verify_oracle=False
        )
        assert report.availability == 0.0
        assert set(report.status_counts) == {"timeout"}

    def test_loose_deadline_changes_nothing(self):
        config = chaos_config(query_deadline_seconds=60.0)
        report = run_chaos(
            make_company_cluster(config), WORKLOAD, seed=0
        )
        assert report.availability == 1.0
        assert report.status_counts == {"ok": len(WORKLOAD)}
