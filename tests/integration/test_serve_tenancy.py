"""Per-tenant metric attribution for the shared adaptive layer.

The plan cache and feedback registry are shared across tenants (one
entry per plan shape cluster-wide), but their metrics must say *whose*
query caused each hit/miss/eviction.  These tests run interleaved
tenant workloads through one cluster and check the label arithmetic —
and that DDL invalidation still clears the shared cache for everyone.
"""

import pytest

from helpers import make_company_cluster
from repro.common.config import SystemConfig
from repro.obs.metrics import get_registry, tenant_scope
from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import ColumnType
from repro.serve import PoissonArrivals, QueryServer, QueryTemplate, TenantSpec

pytestmark = pytest.mark.serve

SQL = "SELECT COUNT(*) FROM emp"
OTHER_SQL = "SELECT COUNT(*) FROM dept"


def _cluster():
    return make_company_cluster(
        SystemConfig.ic_plus(plan_cache=True, cardinality_feedback=True)
    )


class TestTenantAttribution:
    def test_hits_attributed_to_the_tenant_that_caused_them(self):
        cluster = _cluster()
        registry = get_registry()
        # acme plans it cold (miss), then both tenants hit the shared entry.
        with tenant_scope("acme"):
            cluster.sql(SQL)
            cluster.sql(SQL)
        with tenant_scope("biz"):
            cluster.sql(SQL)
        assert registry.counter("plan_cache.misses", tenant="acme") == 1
        assert registry.counter("plan_cache.hits", tenant="acme") == 1
        assert registry.counter("plan_cache.misses", tenant="biz") == 0
        assert registry.counter("plan_cache.hits", tenant="biz") == 1

    def test_unscoped_queries_keep_unlabelled_series(self):
        cluster = _cluster()
        registry = get_registry()
        cluster.sql(SQL)
        cluster.sql(SQL)
        assert registry.counter("plan_cache.misses") == 1
        assert registry.counter("plan_cache.hits") == 1
        # No tenant-labelled series appeared.
        snapshot = registry.snapshot()
        assert not any(
            name.startswith("plan_cache") and "tenant=" in name
            for name in snapshot
        )

    def test_feedback_observations_carry_tenant_label(self):
        cluster = _cluster()
        with tenant_scope("acme"):
            cluster.sql(SQL)
        assert (
            get_registry().counter(
                "adaptive.feedback_observations", tenant="acme"
            )
            > 0
        )

    def test_contention_attribution_under_interleaved_serving(self):
        """Concurrent tenants: per-tenant hit counters sum to the truth."""
        cluster = _cluster()
        templates = (QueryTemplate("q", SQL),)
        tenants = [
            TenantSpec("acme", templates, PoissonArrivals(rate=4.0)),
            TenantSpec("biz", templates, PoissonArrivals(rate=4.0)),
        ]
        server = QueryServer(cluster, tenants, seed=17)
        result = server.run(6.0)
        registry = get_registry()
        for tenant in ("acme", "biz"):
            recorded_hits = sum(
                1
                for r in result.completed
                if r.tenant == tenant and r.cache_hit
            )
            assert (
                registry.counter("plan_cache.hits", tenant=tenant)
                == recorded_hits
            )
        total = registry.counter(
            "plan_cache.hits", tenant="acme"
        ) + registry.counter("plan_cache.hits", tenant="biz")
        assert total == sum(1 for r in result.completed if r.cache_hit)
        assert total > 0  # repeated-template traffic must actually hit


class TestDdlInvalidation:
    def test_ddl_clears_the_shared_cache_for_all_tenants(self):
        cluster = _cluster()
        registry = get_registry()
        with tenant_scope("acme"):
            cluster.sql(SQL)
        with tenant_scope("biz"):
            cluster.sql(OTHER_SQL)
        assert len(cluster.adaptive.cache) == 2
        # DDL from a third tenant drops every tenant's entries.
        with tenant_scope("ops"):
            cluster.create_table(
                TableSchema(
                    "audit",
                    [Column("id", ColumnType.INTEGER)],
                    ["id"],
                ),
                [(1,)],
            )
        assert len(cluster.adaptive.cache) == 0
        assert (
            registry.counter("plan_cache.invalidations", tenant="ops") == 2
        )
        # Both tenants replan cold after the invalidation.
        with tenant_scope("acme"):
            cluster.sql(SQL)
        with tenant_scope("biz"):
            cluster.sql(OTHER_SQL)
        assert registry.counter("plan_cache.misses", tenant="acme") == 2
        assert registry.counter("plan_cache.misses", tenant="biz") == 2
