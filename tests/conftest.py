"""Pytest path setup so tests can import the shared helpers module."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
