"""Pytest path setup plus the always-on plan-invariant net.

The autouse fixture wraps ``ExecutionEngine.execute`` so that *every*
physical plan executed anywhere in the suite is first checked against the
structural invariants in :mod:`repro.verify.invariants`.  Any test that
drives a query through the engine therefore doubles as an invariant test:
a planner regression that produces a malformed plan fails loudly at the
point of execution instead of as a silent wrong answer downstream.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.adaptive import (  # noqa: E402
    reset_adaptive_state,
    reset_midquery_state,
)
from repro.exec.engine import ExecutionEngine  # noqa: E402
from repro.obs.metrics import reset_registry  # noqa: E402
from repro.serve import reset_serve_state  # noqa: E402
from repro.stats import reset_sketch_state  # noqa: E402
from repro.storage.adapters import reset_adapter_state  # noqa: E402
from repro.verify.invariants import (  # noqa: E402
    PlanValidator,
    check_execution_result,
)


def pytest_addoption(parser):
    parser.addoption(
        "--snapshot-update",
        action="store_true",
        default=False,
        help="rewrite the golden plan snapshots under tests/golden/",
    )
    parser.addoption(
        "--backend",
        choices=("row", "columnar"),
        default=None,
        help="run the whole suite under one execution backend "
        "(sets REPRO_EXECUTION_BACKEND, the SystemConfig default)",
    )


def pytest_configure(config):
    backend = config.getoption("--backend")
    if backend is not None:
        os.environ["REPRO_EXECUTION_BACKEND"] = backend


@pytest.fixture
def snapshot_update(request):
    return request.config.getoption("--snapshot-update")


@pytest.fixture(params=["row", "columnar"])
def execution_backend(request):
    """Parametrizes a test over both execution backends.

    Tests take this fixture and build their cluster with
    ``config.with_(execution_backend=execution_backend)``; every
    assertion then runs against the row interpreter and the vectorized
    columnar one.
    """
    return request.param


@pytest.fixture(autouse=True)
def _reset_metrics_registry():
    """Each test starts with an empty global metrics registry.

    Without this, counters emitted by one test leak into the next test's
    snapshots/deltas (the registry is a module-level singleton by design,
    mirroring a process-wide metrics endpoint).
    """
    reset_registry()
    yield
    reset_registry()


@pytest.fixture(autouse=True)
def _reset_adaptive_state():
    """Each test starts with empty plan caches and feedback registries.

    Clusters created by module/session-scoped fixtures outlive a single
    test; wiping their adaptive state keeps cached plans and harvested
    cardinalities from leaking across tests.
    """
    reset_adaptive_state()
    yield
    reset_adaptive_state()


@pytest.fixture(autouse=True)
def _reset_midquery_state():
    """Each test starts (and ends) without leaked ``__mq_*`` temp tables.

    The engine drops its materialization temps in a ``finally``, but a
    test that monkeypatches execution or asserts mid-failure could still
    strand one in a module-scoped cluster's store.
    """
    reset_midquery_state()
    yield
    reset_midquery_state()


@pytest.fixture(autouse=True)
def _reset_serve_state():
    """Each test starts outside any tenant scope.

    A test that raises from inside ``tenant_scope`` would otherwise leave
    the tenant label stack non-empty and silently attach tenant labels to
    every later test's metrics.
    """
    reset_serve_state()
    yield
    reset_serve_state()


@pytest.fixture(autouse=True)
def _reset_sketch_state():
    """Each test starts with empty sketch registries.

    Module-scoped clusters outlive a single test; wiping their table and
    operator sketches keeps seam-harvested HLLs from one test from
    steering another test's plans.
    """
    reset_sketch_state()
    yield
    reset_sketch_state()


@pytest.fixture(autouse=True)
def _reset_adapter_state():
    """Each test starts with every storage adapter's caches empty.

    Adapter instances live per-table, but module-scoped clusters outlive
    a single test; wiping column-file row groups, remote request
    counters and any other adapter-side state keeps one test's scans
    from warming (or skewing the metrics of) another's.
    """
    reset_adapter_state()
    yield
    reset_adapter_state()


@pytest.fixture(autouse=True)
def _validate_every_executed_plan(monkeypatch):
    original = ExecutionEngine.execute
    validator = PlanValidator()

    def checked_execute(self, plan, **kwargs):
        validator.check(plan)
        result = original(self, plan, **kwargs)
        check_execution_result(result)
        return result

    # Tests that need the engine's own behaviour (e.g. the
    # verify_execution flag) can reach the unwrapped method here.
    checked_execute.__wrapped__ = original
    monkeypatch.setattr(ExecutionEngine, "execute", checked_execute)
