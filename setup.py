"""Shim so `python setup.py develop` works in offline environments
without the `wheel` package (pip's editable build needs bdist_wheel)."""
from setuptools import setup

setup()
