"""Ablation: each Section 4/5 fix toggled individually on top of IC.

DESIGN.md calls out the individual design choices; this bench flips one
flag at a time and reports the latency effect on the queries the paper
attributes to each fix:

* FILTER_CORRELATE            -> Q4 (filters stuck above the correlation)
* join-condition simplification -> Q19 (Section 5.2's motivating query)
* broadcast join mapping + hash join -> Q3 (LINEITEM stays in place)
* fixed join estimation       -> Q21 (cardinality-1 NLJ chains)
"""

from __future__ import annotations

from repro.bench.tpch import QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

# The fixed-estimation ablation needs enough data for the baseline's
# nested-loop catastrophe to matter; 0.5 is the paper's smallest SF.
SF = 0.5

#: (query id, flags to enable on top of IC+-minus-that-flag) — we compare
#: full IC+ against IC+ with one fix disabled, which isolates the fix while
#: keeping the rest of the system stable (the paper notes the fixes are
#: interdependent, so disabling one from IC+ is the meaningful direction).
ABLATIONS = [
    ("Q4", 4, {"filter_correlate_rule": False}),
    ("Q19", 19, {"join_condition_simplification": False}),
    ("Q3", 3, {"broadcast_join_mapping": False}),
    # The estimation fix's big wins (Q17/Q21 timeouts) only manifest in
    # combination with the baseline's other defects — the paper notes the
    # Section 4/5.1/5.2 changes "are dependent on one another".  Q2 is the
    # query where the legacy estimator still dents an otherwise-fixed
    # system (region/nation inputs sit below its small-input threshold).
    ("Q2", 2, {"fixed_join_estimation": False}),
]


def test_ablation_planner_fixes(benchmark, capsys):
    full = load_tpch_cluster(SystemConfig.ic_plus(4), SF)
    lines = ["", "Ablation: disabling one IC+ fix at a time (SF %.1f)" % SF]
    lines.append("query  fix disabled                      IC+       without    impact")
    for label, qid, overrides in ABLATIONS:
        ablated = load_tpch_cluster(
            SystemConfig.ic_plus(4).with_(**overrides), SF
        )
        base = full.try_sql(QUERIES[qid].sql)
        without = ablated.try_sql(QUERIES[qid].sql)
        assert base.ok
        flag = next(iter(overrides))
        if without.ok:
            impact = without.simulated_seconds / base.simulated_seconds
            lines.append(
                f"{label:<6} {flag:<33} {base.simulated_seconds:8.3f}  "
                f"{without.simulated_seconds:8.3f}  {impact:6.2f}x slower"
            )
            # Each fix must matter for its poster query.
            assert impact >= 1.0, (label, flag, impact)
        else:
            lines.append(
                f"{label:<6} {flag:<33} {base.simulated_seconds:8.3f}  "
                f"{without.status.value:>9}"
            )
    with capsys.disabled():
        print("\n".join(lines))

    benchmark(lambda: full.try_sql(QUERIES[4].sql))
