"""Figure 10: multithreading incremental difference, IC+ vs IC+M (8 sites).

Same comparison as Figure 9 on the larger cluster.  With more sites each
partition is smaller, so fixed variant overheads weigh more and fewer
queries benefit — the paper notes Q4 flips to a decrease on eight sites.
"""

from __future__ import annotations

from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

from test_fig9_multithreading_4sites import (
    QUERY_NAMES,
    check_multithreading_shape,
    multithreading_changes,
)

SITES = 8


def test_fig10_multithreading_8sites(
    benchmark, tpch_matrix, scale_factors, site_counts, capsys
):
    if SITES not in site_counts:
        import pytest

        pytest.skip("8-site matrix disabled via REPRO_BENCH_SITES")
    changes = multithreading_changes(tpch_matrix, scale_factors, SITES)
    lines = ["", f"Figure 10: IC+ vs IC+M incremental change ({SITES} sites)"]
    for name in QUERY_NAMES:
        change = changes[name]
        cell = "   n/a" if change is None else f"{change:+6.1f}%"
        lines.append(f"{name:<6} {cell}")
    with capsys.disabled():
        print("\n".join(lines))

    check_multithreading_shape(changes)

    cluster = load_tpch_cluster(
        SystemConfig.ic_plus_m(SITES), min(scale_factors)
    )
    benchmark(lambda: cluster.sql(QUERIES[6].sql))
