"""Figure 7: IC+ per-query performance gain over the baseline IC.

Reproduces "Join Optimizations & Query Planner Performance Improvements
over Baseline": for each TPC-H query and site count, the mean speedup of
IC+ over IC averaged across scale factors.  Queries the baseline cannot
complete (Q2/Q5/Q9 planning failures; Q17/Q19/Q21 timeouts) have no bar,
exactly as in the paper ("comparisons ... are not available because they
did not complete execution in the IC baseline system").

Expected shape (Section 6.2.1): gains for every completing query; the
biggest from filter pushdown (Q4, Q22), the broadcast mapping (Q3, Q7, Q8,
Q10, Q11, Q13, Q16) and the hash join; Q1/Q6 unchanged (same plans).
"""

from __future__ import annotations

from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

QUERY_NAMES = [f"Q{qid}" for qid in ENABLED_QUERY_IDS]


def compute_fig7(tpch_matrix, scale_factors, site_counts):
    gains = {}
    for sites in site_counts:
        baseline = tpch_matrix[("IC", sites)]
        improved = tpch_matrix[("IC+", sites)]
        gains[sites] = {
            name: improved.mean_gain_over(baseline, name, scale_factors)
            for name in QUERY_NAMES
        }
    return gains


def test_fig7_ic_plus_speedup(
    benchmark, tpch_matrix, scale_factors, site_counts, capsys
):
    gains = compute_fig7(tpch_matrix, scale_factors, site_counts)

    lines = ["", "Figure 7: IC+ speedup over IC (mean across scale factors)"]
    lines.append("query  " + "  ".join(f"{s}-sites" for s in site_counts))
    for name in QUERY_NAMES:
        cells = []
        for sites in site_counts:
            gain = gains[sites][name]
            cells.append("  n/a  " if gain is None else f"{gain:6.2f}x")
        lines.append(f"{name:<6} " + "  ".join(cells))
    with capsys.disabled():
        print("\n".join(lines))

    for sites in site_counts:
        # Queries IC cannot run have no bar — and they are exactly the six
        # the paper lists.  (The Q17/Q19/Q21 timeouts are scale-dependent;
        # below the paper's smallest SF of 0.5 they may complete.)
        missing = {n for n, g in gains[sites].items() if g is None}
        if min(scale_factors) >= 0.5:
            assert missing == {"Q2", "Q5", "Q9", "Q17", "Q19", "Q21"}
        else:
            assert {"Q2", "Q5", "Q9"} <= missing <= {
                "Q2", "Q5", "Q9", "Q17", "Q19", "Q21"
            }
        # Every comparable query improves or stays level (>= ~1x).
        for name, gain in gains[sites].items():
            if gain is not None:
                assert gain >= 0.85, f"{name} regressed at {sites} sites: {gain}"
        # Headline gains: at least a third of the queries improve >= 1.5x.
        strong = [g for g in gains[sites].values() if g is not None and g >= 1.5]
        assert len(strong) >= 5

    # Benchmark a representative IC+ execution (Q3 at the smallest SF).
    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), min(scale_factors))
    benchmark(lambda: cluster.sql(QUERIES[3].sql))
