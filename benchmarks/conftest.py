"""Shared fixtures for the paper-reproduction benchmarks.

The heavy experiment matrices (every system x site count x scale factor)
are computed once per session and shared by the figure benchmarks; each
benchmark file prints its figure/table in the paper's layout and uses the
pytest-benchmark fixture to time a representative piece of real work.

Environment knobs:

* ``REPRO_BENCH_SF``   — comma-separated scale factors (default "0.5,1").
* ``REPRO_BENCH_SITES`` — comma-separated site counts (default "4,8").
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.bench.harness import ResponseTimeHarness, ResponseTimeResult
from repro.bench.ssb import SSB_QUERIES, FIGURE11_QUERY_IDS, load_ssb_cluster
from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

SYSTEM_MAKERS = {
    "IC": SystemConfig.ic,
    "IC+": SystemConfig.ic_plus,
    "IC+M": SystemConfig.ic_plus_m,
}


def bench_scale_factors() -> Tuple[float, ...]:
    raw = os.environ.get("REPRO_BENCH_SF", "0.5,1")
    return tuple(float(x) for x in raw.split(","))


def bench_site_counts() -> Tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SITES", "4,8")
    return tuple(int(x) for x in raw.split(","))


@pytest.fixture(scope="session")
def scale_factors() -> Tuple[float, ...]:
    return bench_scale_factors()


@pytest.fixture(scope="session")
def site_counts() -> Tuple[int, ...]:
    return bench_site_counts()


@pytest.fixture(scope="session")
def tpch_matrix(
    scale_factors, site_counts
) -> Dict[Tuple[str, int], ResponseTimeResult]:
    """Per-query response times for every (system, sites) configuration."""
    queries = {f"Q{qid}": QUERIES[qid].sql for qid in ENABLED_QUERY_IDS}
    matrix: Dict[Tuple[str, int], ResponseTimeResult] = {}
    for sites in site_counts:
        for name, maker in SYSTEM_MAKERS.items():
            harness = ResponseTimeHarness(
                load_tpch_cluster, queries, scale_factors
            )
            matrix[(name, sites)] = harness.run(maker(sites))
    return matrix


@pytest.fixture(scope="session")
def ssb_matrix(
    scale_factors, site_counts
) -> Dict[Tuple[str, int], ResponseTimeResult]:
    """SSB response times for IC and IC+M (Figure 11's comparison)."""
    queries = {
        qid: SSB_QUERIES[qid].sql for qid in FIGURE11_QUERY_IDS
    }
    matrix: Dict[Tuple[str, int], ResponseTimeResult] = {}
    for sites in site_counts:
        for name in ("IC", "IC+M"):
            harness = ResponseTimeHarness(
                load_ssb_cluster, queries, scale_factors
            )
            matrix[(name, sites)] = harness.run(SYSTEM_MAKERS[name](sites))
    return matrix


def format_gain_table(
    title: str,
    queries,
    gains: Dict[Tuple[str, int], Dict[str, float]],
    site_counts,
) -> str:
    """Render a Figure 7/8-style per-query gain table."""
    lines = [title, "query  " + "  ".join(f"{s}-sites" for s in site_counts)]
    for query in queries:
        cells = []
        for sites in site_counts:
            gain = gains.get(("gain", sites), {}).get(query)
            cells.append("   n/a " if gain is None else f"{gain:6.2f}x")
        lines.append(f"{query:<6} " + "  ".join(cells))
    return "\n".join(lines)
