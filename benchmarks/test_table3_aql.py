"""Table 3: Average Query Latency for 4 and 8 sites, 2/4/8 clients.

Reproduces the Section 6.3 methodology: terminals submit randomised
queries back-to-back for a fixed window; queries the baseline cannot run
(Q2/Q5/Q9/Q17/Q19/Q21) are disabled for *all* systems "to ensure a fair
comparison".

Expected shape: AQL rises with clients and falls with sites for every
system; IC+ always beats IC; IC+M beats IC+ at two clients but falls
behind at four and eight, when its doubled thread count exceeds the
per-site execution slots (the paper's CPU-contention explanation).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_aql
from repro.bench.tpch import (
    ENABLED_QUERY_IDS,
    IC_FAILING_QUERY_IDS,
    QUERIES,
    load_tpch_cluster,
)
from repro.common.config import SystemConfig

CLIENTS = (2, 4, 8)
SYSTEMS = ("IC", "IC+", "IC+M")
MAKERS = {
    "IC": SystemConfig.ic,
    "IC+": SystemConfig.ic_plus,
    "IC+M": SystemConfig.ic_plus_m,
}


@pytest.fixture(scope="module")
def aql_table(site_counts, scale_factors):
    sf = max(scale_factors)
    queries = {
        f"Q{qid}": QUERIES[qid].sql
        for qid in ENABLED_QUERY_IDS
        if qid not in IC_FAILING_QUERY_IDS
    }
    table = {}
    for sites in site_counts:
        for system in SYSTEMS:
            cluster = load_tpch_cluster(MAKERS[system](sites), sf)
            for clients in CLIENTS:
                result = run_aql(cluster, queries, clients, 300.0)
                table[(sites, system, clients)] = result.average_latency
    return table


def test_table3_aql(benchmark, aql_table, site_counts, scale_factors, capsys):
    lines = ["", "Table 3: Average Query Latency (simulated seconds)"]
    header = "clients  " + "  ".join(
        f"{system}@{sites}" for sites in site_counts for system in SYSTEMS
    )
    lines.append(header)
    for clients in CLIENTS:
        cells = [
            f"{aql_table[(sites, system, clients)]:7.3f}"
            for sites in site_counts
            for system in SYSTEMS
        ]
        lines.append(f"{clients:<8} " + "  ".join(cells))
    with capsys.disabled():
        print("\n".join(lines))

    for sites in site_counts:
        for system in SYSTEMS:
            series = [aql_table[(sites, system, c)] for c in CLIENTS]
            # AQL rises (weakly) with client count.
            assert series[0] <= series[1] * 1.05
            assert series[1] <= series[2] * 1.05
        for clients in CLIENTS:
            # IC+ always beats IC.
            assert (
                aql_table[(sites, "IC+", clients)]
                < aql_table[(sites, "IC", clients)]
            )
        # IC+M wins at two clients, loses ground at eight (contention).
        assert (
            aql_table[(sites, "IC+M", 2)]
            <= aql_table[(sites, "IC+", 2)] * 1.02
        )
        assert (
            aql_table[(sites, "IC+M", 8)]
            > aql_table[(sites, "IC+", 8)]
        )
    if len(site_counts) > 1:
        small, large = min(site_counts), max(site_counts)
        for system in SYSTEMS:
            for clients in CLIENTS:
                assert (
                    aql_table[(large, system, clients)]
                    < aql_table[(small, system, clients)]
                )

    # Benchmark one AQL simulation end-to-end (replayed task graphs).
    queries = {
        f"Q{qid}": QUERIES[qid].sql
        for qid in ENABLED_QUERY_IDS
        if qid not in IC_FAILING_QUERY_IDS
    }
    cluster = load_tpch_cluster(SystemConfig.ic_plus(4), min(scale_factors))
    benchmark(lambda: run_aql(cluster, queries, clients=4, duration_seconds=60.0))
