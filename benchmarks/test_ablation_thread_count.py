"""Ablation: how many variant fragments per fragment? (Section 6.2.3)

"When testing different multi-threaded configurations, a dual-threaded
configuration had the best performance."  This bench reproduces the
trade-off behind that choice: isolated query latency keeps improving until
the per-site execution slots saturate, but under concurrent clients every
extra thread is pure oversubscription — two threads capture most of the
single-query gain while limiting the contention damage.
"""

from __future__ import annotations

import statistics

from repro.bench.harness import run_aql
from repro.bench.tpch import (
    ENABLED_QUERY_IDS,
    IC_FAILING_QUERY_IDS,
    QUERIES,
    load_tpch_cluster,
)
from repro.common.config import SystemConfig

SF = 0.5
THREADS = (1, 2, 3, 4, 8)


def test_ablation_thread_count(benchmark, capsys):
    workload = {
        f"Q{qid}": QUERIES[qid].sql
        for qid in ENABLED_QUERY_IDS
        if qid not in IC_FAILING_QUERY_IDS
    }
    single = {}
    loaded = {}
    for threads in THREADS:
        cluster = load_tpch_cluster(
            SystemConfig.ic_plus_m(4, threads=threads), SF
        )
        latencies = []
        for qid in ENABLED_QUERY_IDS:
            outcome = cluster.try_sql(QUERIES[qid].sql)
            if outcome.ok:
                latencies.append(outcome.simulated_seconds)
        single[threads] = statistics.mean(latencies)
        loaded[threads] = run_aql(
            cluster, workload, clients=4, duration_seconds=300
        ).average_latency

    lines = ["", "Ablation: variant fragments per fragment (Section 6.2.3)"]
    lines.append("threads  single-query mean   AQL @ 4 clients")
    for threads in THREADS:
        lines.append(
            f"{threads:<8} {single[threads]:>17.4f} {loaded[threads]:>17.4f}"
        )
    with capsys.disabled():
        print("\n".join(lines))

    # Isolated queries: the second thread helps; past the slot count it hurts.
    assert single[2] < single[1]
    assert single[8] > single[4]
    # The second thread captures more gain than the third and fourth do.
    assert single[1] - single[2] > single[2] - single[4]
    # Under concurrent load, extra threads only add contention.
    assert loaded[2] < loaded[4] < loaded[8]

    cluster = load_tpch_cluster(SystemConfig.ic_plus_m(4), 0.2)
    benchmark(lambda: cluster.sql(QUERIES[1].sql))
