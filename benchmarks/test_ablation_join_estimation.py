"""Ablation: legacy join-size estimation vs the Eq. 3 replacement.

Measures both estimators against the *actual* join result sizes over
TPC-H joins (Section 4.1: "empirical testing showed estimations from
Equation 3 were as good or better compared to the original ... and did not
suffer from the issue above").  The defect: any input at or below the
small-input threshold pins the estimate at 1 row, cascading through join
chains.
"""

from __future__ import annotations

from repro.bench.tpch import cached_tpch_data
from repro.stats.estimator import (
    LEGACY_SMALL_INPUT,
    legacy_join_size,
    swami_schiefer_join_size,
)

SF = 0.2


def _join_cases():
    data = cached_tpch_data(SF)
    orders = data["orders"]
    lineitem = data["lineitem"]
    nation = data["nation"]
    region = data["region"]
    supplier = data["supplier"]

    def distinct(rows, col):
        return float(len({r[col] for r in rows}))

    def actual(left, lcol, right, rcol):
        keys = {}
        for row in right:
            keys[row[rcol]] = keys.get(row[rcol], 0) + 1
        return float(sum(keys.get(row[lcol], 0) for row in left))

    cases = []
    # orders x lineitem on orderkey (both large).
    cases.append(
        (
            "orders*lineitem",
            len(orders), len(lineitem),
            distinct(orders, 0), distinct(lineitem, 0),
            actual(orders, 0, lineitem, 0),
        )
    )
    # supplier x nation on nationkey.
    cases.append(
        (
            "supplier*nation",
            len(supplier), len(nation),
            distinct(supplier, 3), distinct(nation, 0),
            actual(supplier, 3, nation, 0),
        )
    )
    # nation x region on regionkey — region is tiny: the defect zone.
    cases.append(
        (
            "nation*region",
            len(nation), len(region),
            distinct(nation, 2), distinct(region, 0),
            actual(nation, 2, region, 0),
        )
    )
    # A filtered region (1 row) joined to nation: the degenerate case.
    cases.append(("nation*region[name=ASIA]", len(nation), 1, 25.0, 1.0, 5.0))
    return cases


def relative_error(estimate: float, actual: float) -> float:
    return abs(estimate - actual) / max(actual, 1.0)


def test_ablation_join_estimation(benchmark, capsys):
    cases = _join_cases()
    lines = ["", "Ablation: join size estimation (Section 4.1 / Eq. 3)"]
    lines.append(
        "join                       actual     legacy     eq3       "
        "err(legacy)  err(eq3)"
    )
    legacy_errors = []
    eq3_errors = []
    for name, lrows, rrows, ld, rd, actual in cases:
        legacy = legacy_join_size(lrows, rrows, ld, rd)
        eq3 = swami_schiefer_join_size(lrows, rrows, ld, rd)
        err_l = relative_error(legacy, actual)
        err_e = relative_error(eq3, actual)
        legacy_errors.append(err_l)
        eq3_errors.append(err_e)
        lines.append(
            f"{name:<26} {actual:>9.0f} {legacy:>9.0f} {eq3:>9.0f} "
            f"{err_l:>11.2f} {err_e:>9.2f}"
        )
    with capsys.disabled():
        print("\n".join(lines))

    # The degenerate case: a small input collapses the legacy estimate to 1.
    assert legacy_join_size(25, 1, 25, 1) == 1.0
    assert legacy_join_size(LEGACY_SMALL_INPUT, 10_000, 5, 5) == 1.0
    # Eq. 3 is "as good or better" in aggregate.
    assert sum(eq3_errors) <= sum(legacy_errors)

    benchmark(
        lambda: [
            swami_schiefer_join_size(n, n * 4, n / 2, n) for n in range(1, 500)
        ]
    )
