"""The Section 1 / Section 6 failure matrix.

"Of the 22 TPC-H queries, eight failed to execute using a standard
deployment": Q15 (SQL VIEWs unsupported), Q20 (planner exception),
Q17/Q19/Q21 (nested-loop plans past the runtime limit), Q2/Q5/Q9 (no
execution plan generated).  IC+ completes every enabled query — the paper
reports all six baseline casualties finishing in under a minute.
"""

from __future__ import annotations

from repro.bench.tpch import QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig
from repro.core.cluster import QueryStatus

EXPECTED_IC = {
    2: QueryStatus.PLANNING_FAILED,
    5: QueryStatus.PLANNING_FAILED,
    9: QueryStatus.PLANNING_FAILED,
    15: QueryStatus.UNSUPPORTED,
    17: QueryStatus.TIMEOUT,
    19: QueryStatus.TIMEOUT,
    20: QueryStatus.PLANNER_DEFECT,
    21: QueryStatus.TIMEOUT,
}


def test_failure_matrix(benchmark, scale_factors, capsys):
    # The Q17/Q19/Q21 nested-loop timeouts need enough data to blow the
    # runtime limit; the paper's smallest scale factor is 0.5.
    sf = max(0.5, min(scale_factors))
    ic = load_tpch_cluster(SystemConfig.ic(4), sf)
    ic_plus = load_tpch_cluster(SystemConfig.ic_plus(4), sf)

    lines = ["", "Baseline failure matrix (Section 1 / Section 6)"]
    lines.append("query  IC                IC+")
    for qid in sorted(QUERIES):
        a = ic.try_sql(QUERIES[qid].sql)
        b = ic_plus.try_sql(QUERIES[qid].sql)
        lines.append(f"Q{qid:<5} {a.status.value:<17} {b.status.value}")
        if qid in EXPECTED_IC:
            assert a.status is EXPECTED_IC[qid], (qid, a.status)
        else:
            assert a.ok, (qid, a.status, a.error)
        if qid in (15, 20):
            # Disabled on every system variant.
            assert not b.ok
        else:
            assert b.ok, (qid, b.status, b.error)
    with capsys.disabled():
        print("\n".join(lines))

    benchmark(lambda: ic_plus.try_sql(QUERIES[2].sql))
