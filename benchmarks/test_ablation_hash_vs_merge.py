"""Ablation: the Section 5.1.3 hash-join vs merge-join CPU cost analysis.

Sweeps relation sizes through the cost model and reports where the
planner's preference crosses over.  The paper's analysis: as relations
grow, merge join's sort terms (n log n) outweigh hash join's constant
per-tuple work, so hash join wins for large unsorted inputs; with sorts
removed (pre-sorted inputs) merge join always wins the merge-phase-only
comparison.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.cost.model import CostModel


def hash_vs_merge(model: CostModel, rows: float):
    """(hash cpu, merge-with-sorts cpu, merge-phase-only cpu) at |A|=|B|."""
    hash_cost = model.hash_join(rows, rows, right_width=8).cpu
    merge_phase = model.merge_join(rows, rows).cpu
    sorts = 2 * model.sort(rows, 8).cpu
    return hash_cost, merge_phase + sorts, merge_phase


def test_ablation_hash_vs_merge(benchmark, capsys):
    model = CostModel(SystemConfig.ic_plus())
    lines = ["", "Ablation: hash join vs merge join CPU cost (Section 5.1.3)"]
    lines.append("rows      hash        merge+sorts  merge-only  winner(unsorted)")
    crossover = None
    for rows in (10, 100, 1_000, 10_000, 100_000, 1_000_000):
        h, m_sorts, m_only = hash_vs_merge(model, float(rows))
        winner = "hash" if h < m_sorts else "merge"
        if winner == "hash" and crossover is None:
            crossover = rows
        lines.append(
            f"{rows:<9} {h:>11.0f} {m_sorts:>12.0f} {m_only:>11.0f}  {winner}"
        )
    lines.append(f"crossover at ~{crossover} rows")
    with capsys.disabled():
        print("\n".join(lines))

    # Shape assertions from the paper's analysis.
    big_h, big_m_sorts, big_m_only = hash_vs_merge(model, 1_000_000.0)
    assert big_h < big_m_sorts, "hash join must win for large unsorted inputs"
    assert big_m_only < big_h, (
        "with both sorts removed, merge join always beats hash join"
    )
    assert crossover is not None

    benchmark(lambda: [hash_vs_merge(model, float(r)) for r in range(100, 2000, 100)])
