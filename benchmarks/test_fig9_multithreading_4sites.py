"""Figure 9: multithreading incremental difference, IC+ vs IC+M (4 sites).

The dual-threaded variant-fragment configuration against its own
single-threaded base.  Expected shape (Section 6.2.3): significant gains
for queries with multiple distributed computation components (Q1, Q3,
Q5-Q8, Q14 in the paper), negligible change for filter-bound or
root-fragment-bound queries, and slowdowns where a reduction operator
keeps the heavy fragment single-threaded (Q16, Q18, Q22).
"""

from __future__ import annotations

from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

QUERY_NAMES = [f"Q{qid}" for qid in ENABLED_QUERY_IDS]
SITES = 4


def multithreading_changes(tpch_matrix, scale_factors, sites):
    base = tpch_matrix[("IC+", sites)]
    multi = tpch_matrix[("IC+M", sites)]
    changes = {}
    for name in QUERY_NAMES:
        gain = multi.mean_gain_over(base, name, scale_factors)
        changes[name] = None if gain is None else (gain - 1.0) * 100.0
    return changes


def check_multithreading_shape(changes):
    present = {n: c for n, c in changes.items() if c is not None}
    gainers = [n for n, c in present.items() if c >= 8.0]
    # Distributed-computation queries benefit...
    assert "Q1" in gainers, f"Q1 should gain from multithreading: {present['Q1']}"
    assert len(gainers) >= 4
    # ...while COUNT(DISTINCT) pins Q16's reduction to a single thread, so
    # it lags the field, and at least one query genuinely slows down under
    # the variant overheads.
    ranked = sorted(present.values())
    median = ranked[len(ranked) // 2]
    assert present["Q16"] < median, (
        f"Q16 should lag the field: {present['Q16']} vs median {median}"
    )
    assert ranked[0] < 0.0, "someone must pay the variant overhead"


def test_fig9_multithreading_4sites(
    benchmark, tpch_matrix, scale_factors, capsys
):
    changes = multithreading_changes(tpch_matrix, scale_factors, SITES)
    lines = ["", f"Figure 9: IC+ vs IC+M incremental change ({SITES} sites)"]
    for name in QUERY_NAMES:
        change = changes[name]
        cell = "   n/a" if change is None else f"{change:+6.1f}%"
        lines.append(f"{name:<6} {cell}")
    with capsys.disabled():
        print("\n".join(lines))

    check_multithreading_shape(changes)

    cluster = load_tpch_cluster(
        SystemConfig.ic_plus_m(SITES), min(scale_factors)
    )
    benchmark(lambda: cluster.sql(QUERIES[6].sql))
