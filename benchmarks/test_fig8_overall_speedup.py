"""Figure 8: overall performance improvement of IC+M over the baseline IC.

"Performance improved for every query and configuration."  Q2, Q5, Q9,
Q17, Q19 and Q21 are not shown because the baseline fails to plan or
execute them (Section 6.2.2).
"""

from __future__ import annotations

from repro.bench.tpch import ENABLED_QUERY_IDS, QUERIES, load_tpch_cluster
from repro.common.config import SystemConfig

QUERY_NAMES = [f"Q{qid}" for qid in ENABLED_QUERY_IDS]


def test_fig8_overall_speedup(
    benchmark, tpch_matrix, scale_factors, site_counts, capsys
):
    gains = {}
    for sites in site_counts:
        baseline = tpch_matrix[("IC", sites)]
        overall = tpch_matrix[("IC+M", sites)]
        gains[sites] = {
            name: overall.mean_gain_over(baseline, name, scale_factors)
            for name in QUERY_NAMES
        }

    lines = ["", "Figure 8: IC+M speedup over IC (mean across scale factors)"]
    lines.append("query  " + "  ".join(f"{s}-sites" for s in site_counts))
    for name in QUERY_NAMES:
        cells = []
        for sites in site_counts:
            gain = gains[sites][name]
            cells.append("  n/a  " if gain is None else f"{gain:6.2f}x")
        lines.append(f"{name:<6} " + "  ".join(cells))
    with capsys.disabled():
        print("\n".join(lines))

    for sites in site_counts:
        missing = {n for n, g in gains[sites].items() if g is None}
        if min(scale_factors) >= 0.5:
            assert missing == {"Q2", "Q5", "Q9", "Q17", "Q19", "Q21"}
        else:
            assert {"Q2", "Q5", "Q9"} <= missing <= {
                "Q2", "Q5", "Q9", "Q17", "Q19", "Q21"
            }
        for name, gain in gains[sites].items():
            if gain is not None:
                assert gain >= 0.85, f"{name} regressed at {sites} sites: {gain}"
        # The paper reports 1.2x-17x gains overall; check the envelope.
        comparable = [g for g in gains[sites].values() if g is not None]
        assert max(comparable) >= 2.0
        assert min(comparable) >= 0.85

    cluster = load_tpch_cluster(SystemConfig.ic_plus_m(4), min(scale_factors))
    benchmark(lambda: cluster.sql(QUERIES[1].sql))
