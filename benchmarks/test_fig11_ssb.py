"""Figure 11: Star Schema Benchmark per-query multiplier, IC vs IC+M.

Query sets one and three only: per Section 6.4, QS2 and QS4 are excluded
from the SSB test bench (planner search-space limits; see the SSB module
docs and EXPERIMENTS.md).  Expected shape: QS3 improves the most (join
ordering + hash joins + the broadcast mapping keeping LINEORDER in place);
QS1 improves moderately (only the small DATE relation is shipped).
"""

from __future__ import annotations

from repro.bench.ssb import FIGURE11_QUERY_IDS, SSB_QUERIES, load_ssb_cluster
from repro.common.config import SystemConfig


def test_fig11_ssb(benchmark, ssb_matrix, scale_factors, site_counts, capsys):
    multipliers = {}
    for sites in site_counts:
        baseline = ssb_matrix[("IC", sites)]
        overall = ssb_matrix[("IC+M", sites)]
        multipliers[sites] = {
            qid: overall.mean_gain_over(baseline, qid, scale_factors)
            for qid in FIGURE11_QUERY_IDS
        }

    lines = ["", "Figure 11: SSB per-query multiplier, IC vs IC+M"]
    lines.append("query  " + "  ".join(f"{s}-sites" for s in site_counts))
    for qid in FIGURE11_QUERY_IDS:
        cells = []
        for sites in site_counts:
            gain = multipliers[sites][qid]
            cells.append("  n/a  " if gain is None else f"{gain:6.2f}x")
        lines.append(f"{qid:<6} " + "  ".join(cells))
    lines.append("(QS2 and QS4 excluded, Section 6.4)")
    with capsys.disabled():
        print("\n".join(lines))

    for sites in site_counts:
        flight1 = [multipliers[sites][q] for q in ("Q1.1", "Q1.2", "Q1.3")]
        flight3 = [
            multipliers[sites][q] for q in ("Q3.1", "Q3.2", "Q3.3", "Q3.4")
        ]
        assert all(m is not None and m >= 1.0 for m in flight1)
        assert all(m is not None and m >= 1.2 for m in flight3)
        assert max(flight3) >= 2.0
        # QS3's best beats QS1's best: the paper's headline ordering.
        assert max(flight3) > max(flight1)

    cluster = load_ssb_cluster(SystemConfig.ic_plus_m(4), min(scale_factors))
    benchmark(lambda: cluster.sql(SSB_QUERIES["Q1.1"].sql))
